package crashtest

import (
	"errors"
	"fmt"
	"math/rand"

	"mood/internal/fault"
	"mood/internal/storage"
	"mood/internal/wal"
)

// Sharded torture mode: N independent disk/pool/log stacks — the substrate a
// kernel.DB with ShardCount N runs on — with the armed fault injected into
// ONE seed-chosen victim shard while the others keep committing. The crash
// takes the whole machine down (every shard loses its buffered pages and
// volatile log suffix); reboot repairs and recovers every shard
// independently and then checks the invariants per shard:
//
//   - committed writes survive on every shard, victim included;
//   - loser writes leave no trace on any shard;
//   - a fault on the victim never loses or corrupts another shard's
//     transactions (cross-shard isolation — there is nothing shared to
//     break, and this test keeps it that way);
//   - every page of every shard passes checksum verification after
//     recovery flushes, and no log carries an active transaction.

// ShardedResult reports one sharded iteration.
type ShardedResult struct {
	Result
	Shards int
	Victim int // the shard the fault was armed on
	// VictimStopped reports whether the victim's workload actually died
	// mid-flight (other shards must have kept going regardless).
	VictimStopped bool
}

// shardStack is one shard's full storage stack inside the torture harness.
type shardStack struct {
	disk  *storage.DiskSim
	bp    *storage.BufferPool
	log   *wal.Log
	pages []storage.PageID
}

// RunSharded executes one deterministic sharded crash/recovery iteration:
// cfg.Shards independent stacks, the cfg.Point fault armed on a seed-chosen
// victim shard only. nshards == 1 degenerates to Run's topology (the victim
// is shard 0).
func RunSharded(cfg Config, nshards int) (ShardedResult, error) {
	cfg = cfg.withDefaults()
	if nshards <= 0 {
		nshards = 1
	}
	res := ShardedResult{Result: Result{Seed: cfg.Seed, Point: cfg.Point}, Shards: nshards}
	fail := func(format string, args ...interface{}) (ShardedResult, error) {
		return res, fmt.Errorf("crashtest seed %d point %s shards %d: %s",
			cfg.Seed, cfg.Point, nshards, fmt.Sprintf(format, args...))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	shards := make([]*shardStack, nshards)
	for i := range shards {
		sh := &shardStack{
			disk: storage.NewDiskSim(storage.DefaultDiskParams()),
			log:  wal.NewLog(),
		}
		sh.disk.SetDoublewrite(true)
		sh.bp = storage.NewBufferPool(sh.disk, cfg.Frames)
		sh.bp.SetFlushHook(sh.log.FlushHook())
		for p := 0; p < cfg.Pages; p++ {
			pg, err := sh.bp.NewPage()
			if err != nil {
				return fail("shard %d setup: %v", i, err)
			}
			sh.pages = append(sh.pages, pg.ID)
			if err := sh.bp.Unpin(pg.ID, true); err != nil {
				return fail("shard %d setup unpin: %v", i, err)
			}
		}
		if err := sh.bp.FlushAll(); err != nil {
			return fail("shard %d setup flush: %v", i, err)
		}
		shards[i] = sh
	}

	// Arm the scenario on the victim shard only.
	victim := rng.Intn(nshards)
	res.Victim = victim
	fi := fault.New(cfg.Seed)
	switch cfg.Point {
	case PointLogFlushCrash:
		fi.FailAt(fault.OpLogFlush, int64(1+rng.Intn(4)), fault.Crash)
	case PointPageWriteCrash:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(6)), fault.Crash)
	case PointTornWrite:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(6)), fault.Torn)
	case PointTransientWrite:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(3)), fault.Transient)
	case PointLogAppendCrash:
		fi.FailAt(fault.OpLogAppend, int64(1+rng.Intn(2*cfg.Txns)), fault.Crash)
	case PointPostCommit:
		// No fault: power-fail after the workload with dirty pages unflushed.
	default:
		return fail("unknown crash point")
	}
	shards[victim].disk.SetFaultInjector(fi)
	shards[victim].log.SetFaultInjector(fi)

	pageSize := shards[0].disk.PageSize()
	regionBase := 32
	regionLen := (pageSize - regionBase) / cfg.Txns
	if regionLen < 2 {
		return fail("too many transactions (%d) for the page size", cfg.Txns)
	}

	committed := make([]map[storage.PageID]map[int]byte, nshards)
	losers := make([]map[storage.PageID]map[int]byte, nshards)
	for i := range committed {
		committed[i] = map[storage.PageID]map[int]byte{}
		losers[i] = map[storage.PageID]map[int]byte{}
	}
	record := func(m map[storage.PageID]map[int]byte, w map[storage.PageID]map[int]byte) {
		for p, offs := range w {
			if m[p] == nil {
				m[p] = map[int]byte{}
			}
			for off, v := range offs {
				m[p][off] = v
			}
		}
	}

	// The victim dying stops the victim's workload; the other shards run
	// their full transaction schedule regardless — that independence is the
	// point of per-shard logs. Each shard runs exactly cfg.Txns transactions
	// (round-robin interleaved), and transaction t of a shard writes only in
	// region t of that shard's pages, keeping winner/loser bytes disjoint
	// per shard exactly as Run does.
	died := ""
	for region := 0; region < cfg.Txns; region++ {
		for shardID := 0; shardID < nshards; shardID++ {
			sh := shards[shardID]
			if shardID == victim && died != "" {
				continue // the victim's half of the machine is dead
			}

			var txErr error
			tx := sh.log.Begin()
			res.Started++
			writes := map[storage.PageID]map[int]byte{}
			nWrites := 1 + rng.Intn(cfg.MaxWritesPerTx)
			for w := 0; w < nWrites; w++ {
				p := sh.pages[rng.Intn(len(sh.pages))]
				off := regionBase + region*regionLen + rng.Intn(regionLen)
				val := byte(1 + rng.Intn(255))
				txErr = func() error {
					for attempt := 0; ; attempt++ {
						err := loggedWrite(sh.log, sh.bp, tx, p, off, val)
						if err == nil {
							return nil
						}
						if isTransient(err) && attempt < maxRetries {
							res.Retries++
							continue
						}
						return err
					}
				}()
				if txErr != nil {
					break
				}
				if writes[p] == nil {
					writes[p] = map[int]byte{}
				}
				writes[p][off] = val
			}
			if txErr != nil {
				record(losers[shardID], writes)
				if shardID == victim {
					died = fmt.Sprintf("shard %d: %v", shardID, txErr)
					continue
				}
				return fail("non-victim shard %d died: %v", shardID, txErr)
			}
			switch rng.Intn(5) {
			case 0:
				record(losers[shardID], writes)
				if err := sh.log.Abort(tx, undoApplier(sh.bp)); err != nil {
					if shardID == victim {
						died = fmt.Sprintf("shard %d abort: %v", shardID, err)
						continue
					}
					return fail("non-victim shard %d abort: %v", shardID, err)
				}
			case 1:
				record(losers[shardID], writes) // left active: a loser
			default:
				if err := sh.log.Commit(tx); err != nil {
					record(losers[shardID], writes)
					if shardID == victim {
						died = fmt.Sprintf("shard %d commit: %v", shardID, err)
						continue
					}
					return fail("non-victim shard %d commit: %v", shardID, err)
				}
				res.Committed++
				record(committed[shardID], writes)
			}
			if rng.Intn(2) == 0 {
				// Flush pressure; on the victim this can trip the injector.
				if err := sh.bp.FlushPage(sh.pages[rng.Intn(len(sh.pages))]); err != nil {
					if shardID == victim {
						if !isTransient(err) && died == "" {
							died = fmt.Sprintf("shard %d flush: %v", shardID, err)
						}
						continue
					}
					return fail("non-victim shard %d flush: %v", shardID, err)
				}
			}
		}
	}
	res.Fired = len(fi.Trips()) > 0
	res.CrashedAt = died
	res.VictimStopped = died != ""

	// ---- Reboot: the whole machine power-fails; every shard recovers
	// independently from its own durable log prefix. ----
	for i, sh := range shards {
		sh.disk.SetFaultInjector(nil)
		sh.log.SetFaultInjector(nil)
		for _, id := range sh.disk.CorruptPages() {
			if err := sh.disk.RepairPage(id); err != nil {
				return fail("shard %d repair page %d: %v", i, id, err)
			}
			res.TornFixed++
		}
		bp2 := storage.NewBufferPool(sh.disk, cfg.Frames+8)
		bp2.SetFlushHook(sh.log.FlushHook())
		st, err := sh.log.Recover(bp2)
		if err != nil {
			return fail("shard %d recovery: %v", i, err)
		}
		res.Recovery.Analyzed += st.Analyzed
		res.Recovery.Redone += st.Redone
		res.Recovery.Undone += st.Undone
		res.Recovery.Losers += st.Losers

		// Per-shard invariants.
		for _, p := range sh.pages {
			pg, err := bp2.Fetch(p)
			if err != nil {
				return fail("shard %d fetch page %d after recovery: %v", i, p, err)
			}
			buf := pg.Bytes()
			for off, want := range committed[i][p] {
				if buf[off] != want {
					bp2.Unpin(p, false)
					return fail("durability violated on shard %d: committed write page %d off %d = %d, want %d",
						i, p, off, buf[off], want)
				}
			}
			for off := range losers[i][p] {
				if _, winner := committed[i][p][off]; winner {
					continue
				}
				if buf[off] != 0 {
					bp2.Unpin(p, false)
					return fail("atomicity violated on shard %d: loser write survived at page %d off %d = %d",
						i, p, off, buf[off])
				}
			}
			if err := bp2.Unpin(p, false); err != nil {
				return fail("shard %d unpin: %v", i, err)
			}
		}
		if active := sh.log.ActiveTransactions(); len(active) != 0 {
			return fail("shard %d: transactions still active after recovery: %v", i, active)
		}
		if err := bp2.FlushAll(); err != nil {
			return fail("shard %d post-recovery flush: %v", i, err)
		}
		if bad := sh.disk.CorruptPages(); len(bad) != 0 {
			return fail("shard %d: checksum mismatches after recovery: pages %v", i, bad)
		}
	}
	return res, nil
}

// isTransient reports whether err is the injector's retryable fault.
func isTransient(err error) bool {
	return errors.Is(err, fault.ErrTransient)
}
