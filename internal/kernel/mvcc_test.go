package kernel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"mood/internal/object"
	"mood/internal/sql"
	"mood/internal/storage"
)

func parseSelect(t testing.TB, q string) *sql.Select {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sql.Select)
}

// fingerprint renders a result as sorted rows, so row order never matters.
func rowFingerprint(res *Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func snapQuery(t testing.TB, s *Snapshot, q string) *Result {
	t.Helper()
	res, err := s.Select(parseSelect(t, q))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSnapshotStableUnderWriterStream is the tentpole's differential check:
// while a 2PL writer streams committed updates, a snapshot's scans stay
// row-fingerprint-identical to the state at snapshot begin, the reader
// acquires zero locks (the lock manager's wait counter stays flat), and a
// snapshot begun after the writer finishes agrees with a plain 2PL read.
// Run under -race this also proves the overlay's synchronization.
func TestSnapshotStableUnderWriterStream(t *testing.T) {
	db := openAndDefine(t)
	const n = 40
	oids := make([]storage.OID, n)
	setup := db.Begin()
	for i := 0; i < n; i++ {
		oid, err := setup.Create("Employee", employee(fmt.Sprintf("emp%d", i), int32(i)))
		if err != nil {
			t.Fatal(err)
		}
		oids[i] = oid
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	const q = "SELECT e.ssno, e.name, e.age FROM Employee e"
	snap := db.BeginSnapshot()
	want := rowFingerprint(snapQuery(t, snap, q))
	_, waits0, _ := db.Locks.Stats()

	// Writer: stream updates, deletes and creates in committed transactions.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 8; round++ {
			tx := db.Begin()
			for i := round; i < n; i += 4 {
				v, _, err := tx.Get(oids[i])
				if err != nil {
					t.Error(err)
					return
				}
				v = v.Clone()
				v.SetField("age", object.NewInt(int32(100+round)))
				if err := tx.Update(oids[i], v); err != nil {
					t.Error(err)
					return
				}
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
			// A delete and a create per round, too.
			tx = db.Begin()
			if err := tx.Delete(oids[round]); err != nil {
				t.Error(err)
				return
			}
			if _, err := tx.Create("Employee", employee(fmt.Sprintf("new%d", round), int32(1000+round))); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Reader: scan the snapshot concurrently; every scan must agree with the
	// begin-time fingerprint.
	for scan := 0; scan < 30; scan++ {
		if got := rowFingerprint(snapQuery(t, snap, q)); got != want {
			t.Fatalf("scan %d diverged from snapshot-begin state:\n got: %q\nwant: %q", scan, got, want)
		}
	}
	wg.Wait()
	// Still identical after the writer is done.
	if got := rowFingerprint(snapQuery(t, snap, q)); got != want {
		t.Fatal("post-writer scan diverged from snapshot-begin state")
	}
	// Snapshot reads never touched the lock manager; the single writer never
	// had anyone to wait for. Waits must be exactly flat.
	if _, waits1, _ := db.Locks.Stats(); waits1 != waits0 {
		t.Errorf("lock waits went %d -> %d; snapshot reads must not wait", waits0, waits1)
	}
	snap.Close()

	// Differential oracle: a fresh snapshot sees exactly what 2PL sees now.
	fresh := db.BeginSnapshot()
	defer fresh.Close()
	res2pl, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowFingerprint(snapQuery(t, fresh, q)), rowFingerprint(res2pl); got != want {
		t.Fatalf("fresh snapshot disagrees with 2PL read:\n got: %q\nwant: %q", got, want)
	}
}

// TestSnapshotIgnoresUncommittedWriter: pre-images of an in-flight
// transaction shadow its store mutations, both before and after its commit
// for a snapshot begun first.
func TestSnapshotIgnoresUncommittedWriter(t *testing.T) {
	db := openAndDefine(t)
	setup := db.Begin()
	oid, err := setup.Create("Employee", employee("alice", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := db.BeginSnapshot()
	defer snap.Close()

	tx := db.Begin()
	v, _, err := tx.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	v = v.Clone()
	v.SetField("age", object.NewInt(77))
	if err := tx.Update(oid, v); err != nil {
		t.Fatal(err)
	}
	// Uncommitted write invisible.
	got, _, err := snap.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if age, _ := got.Field("age"); age.Int != 30 {
		t.Errorf("snapshot saw uncommitted age %d", age.Int)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed write still invisible to the older snapshot...
	got, _, err = snap.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if age, _ := got.Field("age"); age.Int != 30 {
		t.Errorf("snapshot saw later commit: age %d", age.Int)
	}
	// ...but visible to a newer one.
	after := db.BeginSnapshot()
	defer after.Close()
	got, _, err = after.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	if age, _ := got.Field("age"); age.Int != 77 {
		t.Errorf("fresh snapshot missed the commit: age %d", age.Int)
	}
}

// TestSnapshotAcrossAbortedDelete: a transactional delete resurrects the
// object under a new OID on abort. A snapshot begun before the delete must
// keep seeing exactly one copy, and a 2PL read afterwards also sees one.
func TestSnapshotAcrossAbortedDelete(t *testing.T) {
	db := openAndDefine(t)
	setup := db.Begin()
	oid, err := setup.Create("Employee", employee("victim", 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = oid

	snap := db.BeginSnapshot()
	defer snap.Close()
	const q = "SELECT e.ssno, e.name FROM Employee e"
	want := rowFingerprint(snapQuery(t, snap, q))

	tx := db.Begin()
	if err := tx.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if got := rowFingerprint(snapQuery(t, snap, q)); got != want {
		t.Fatalf("during delete: %q != %q", got, want)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := rowFingerprint(snapQuery(t, snap, q)); got != want {
		t.Fatalf("after abort: %q != %q (duplicate or lost resurrection?)", got, want)
	}
	// The store now holds the resurrected twin; 2PL sees exactly one object.
	res, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("2PL sees %d rows after aborted delete, want 1", len(res.Rows))
	}
}

// TestSnapshotOverlayGC: retained versions exist only while a snapshot needs
// them, and Close reclaims them.
func TestSnapshotOverlayGC(t *testing.T) {
	db := openAndDefine(t)
	setup := db.Begin()
	oid, err := setup.Create("Employee", employee("gc", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, s := db.Versions(); v != 0 || s != 0 {
		t.Fatalf("overlay not empty with no snapshots: versions=%d snaps=%d", v, s)
	}

	snap := db.BeginSnapshot()
	for i := 0; i < 5; i++ {
		tx := db.Begin()
		v, _, err := tx.Get(oid)
		if err != nil {
			t.Fatal(err)
		}
		v = v.Clone()
		v.SetField("age", object.NewInt(int32(40+i)))
		if err := tx.Update(oid, v); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := db.Versions(); v == 0 {
		t.Fatal("no versions retained for the live snapshot")
	}
	snap.Close()
	if v, s := db.Versions(); v != 0 || s != 0 {
		t.Errorf("Close did not reclaim the overlay: versions=%d snaps=%d", v, s)
	}
}

// TestRecoverResetsOverlay: recovery rewrites pages underneath the overlay,
// so Recover must drop it wholesale.
func TestRecoverResetsOverlay(t *testing.T) {
	db := openAndDefine(t)
	setup := db.Begin()
	oid, err := setup.Create("Employee", employee("crashme", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := db.BeginSnapshot()
	tx := db.Begin()
	v, _, _ := tx.Get(oid)
	v = v.Clone()
	v.SetField("age", object.NewInt(55))
	if err := tx.Update(oid, v); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, s := db.Versions(); v == 0 || s != 1 {
		t.Fatalf("precondition: versions=%d snaps=%d", v, s)
	}
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if v, s := db.Versions(); v != 0 || s != 0 {
		t.Errorf("Recover left overlay: versions=%d snaps=%d", v, s)
	}
	_ = snap
}

// TestSnapshotAutocommitStatements: Execute-level mutations (no explicit
// transaction) also version through the overlay.
func TestSnapshotAutocommitStatements(t *testing.T) {
	db := openAndDefine(t)
	if _, err := db.Execute("NEW Employee <1, 'a', 30>"); err != nil {
		t.Fatal(err)
	}
	snap := db.BeginSnapshot()
	defer snap.Close()
	const q = "SELECT e.ssno, e.name, e.age FROM Employee e"
	want := rowFingerprint(snapQuery(t, snap, q))
	if _, err := db.Execute("UPDATE Employee e SET age = 99 WHERE e.ssno = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("NEW Employee <2, 'b', 31>"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute("DELETE FROM Employee e WHERE e.ssno = 1"); err != nil {
		t.Fatal(err)
	}
	if got := rowFingerprint(snapQuery(t, snap, q)); got != want {
		t.Fatalf("snapshot drifted across autocommit statements:\n got: %q\nwant: %q", got, want)
	}
	fresh := db.BeginSnapshot()
	defer fresh.Close()
	res, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowFingerprint(snapQuery(t, fresh, q)), rowFingerprint(res); got != want {
		t.Fatalf("fresh snapshot disagrees with 2PL: %q vs %q", got, want)
	}
}
