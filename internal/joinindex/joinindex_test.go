package joinindex

import (
	"testing"

	"mood/internal/object"
	"mood/internal/storage"
	"mood/internal/vehicledb"
)

func buildDB(t testing.TB) *vehicledb.DB {
	t.Helper()
	db, _, err := vehicledb.Build(vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 10, Seed: 2,
	}, 512)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBJIForwardBackward(t *testing.T) {
	db := buildDB(t)
	ix, err := BuildBJI(db.Cat, "Vehicle", "drivetrain")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Target != "VehicleDriveTrain" {
		t.Errorf("Target = %q", ix.Target)
	}
	if ix.Len() != 400 {
		t.Errorf("Len = %d, want 400 pairs", ix.Len())
	}
	// Forward agrees with the stored reference.
	v, _, err := db.Cat.GetObject(db.Vehicles[5])
	if err != nil {
		t.Fatal(err)
	}
	want, _ := v.Field("drivetrain")
	got, err := ix.Forward(db.Vehicles[5])
	if err != nil || len(got) != 1 || got[0] != want.Ref {
		t.Errorf("Forward = %v (%v), want %v", got, err, want.Ref)
	}
	// Backward finds both sharing vehicles (pairwise sharing).
	back, err := ix.Backward(want.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Errorf("Backward = %d sources, want 2 (drivetrains are shared pairwise)", len(back))
	}
	foundSelf := false
	for _, oid := range back {
		if oid == db.Vehicles[5] {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Error("Backward missing the probing vehicle")
	}
}

func TestBJIMaintenance(t *testing.T) {
	db := buildDB(t)
	ix, err := BuildBJI(db.Cat, "Vehicle", "manufacturer")
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Len()
	// Remove one vehicle's pair, then re-add it pointing elsewhere.
	v, _, _ := db.Cat.GetObject(db.Vehicles[0])
	mf, _ := v.Field("manufacturer")
	if err := ix.Remove(db.Vehicles[0], mf); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != before-1 {
		t.Errorf("Len after remove = %d", ix.Len())
	}
	newRef := object.NewRef(db.Companies[399])
	if err := ix.Insert(db.Vehicles[0], newRef); err != nil {
		t.Fatal(err)
	}
	got, _ := ix.Forward(db.Vehicles[0])
	if len(got) != 1 || got[0] != db.Companies[399] {
		t.Errorf("Forward after rebind = %v", got)
	}
	back, _ := ix.Backward(db.Companies[399])
	hit := false
	for _, o := range back {
		if o == db.Vehicles[0] {
			hit = true
		}
	}
	if !hit {
		t.Error("Backward after rebind missing source")
	}
}

func TestBJIRejectsAtomicAttribute(t *testing.T) {
	db := buildDB(t)
	if _, err := BuildBJI(db.Cat, "Vehicle", "weight"); err == nil {
		t.Error("BJI on atomic attribute accepted")
	}
}

func TestPathIndex(t *testing.T) {
	db := buildDB(t)
	ix, err := BuildPathIndex(db.Cat, "Vehicle", []string{"drivetrain", "engine"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 400 {
		t.Errorf("path pairs = %d, want 400", ix.Len())
	}
	// Forward endpoint equals the manual two-hop walk.
	v, _, _ := db.Cat.GetObject(db.Vehicles[7])
	dtRef, _ := v.Field("drivetrain")
	dt, _, _ := db.Cat.GetObject(dtRef.Ref)
	engRef, _ := dt.Field("engine")
	got, err := ix.Forward(db.Vehicles[7])
	if err != nil || len(got) != 1 || got[0] != engRef.Ref {
		t.Errorf("path Forward = %v (%v), want %v", got, err, engRef.Ref)
	}
	// Backward from an engine reaches every vehicle whose chain ends there.
	back, err := ix.Backward(engRef.Ref)
	if err != nil {
		t.Fatal(err)
	}
	// 400 vehicles / 200 drivetrains / 200 engines: each engine serves one
	// drivetrain, shared by two vehicles.
	if len(back) != 2 {
		t.Errorf("path Backward = %d, want 2", len(back))
	}
	// Cost stats usable by the optimizer.
	cs := ix.CostStats()
	if cs.Levels < 1 || cs.Leaves < 1 {
		t.Errorf("CostStats = %+v", cs)
	}
}

func TestPathIndexValidation(t *testing.T) {
	db := buildDB(t)
	if _, err := BuildPathIndex(db.Cat, "Vehicle", nil); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := BuildPathIndex(db.Cat, "Vehicle", []string{"weight", "engine"}); err == nil {
		t.Error("atomic mid-path accepted")
	}
}

func TestPathIndexWithNulls(t *testing.T) {
	cat, _, err := vehicledb.NewEnvironment(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(cat); err != nil {
		t.Fatal(err)
	}
	// One vehicle with a null drivetrain: no pair, no error.
	_, err = cat.CreateObject("Vehicle", object.NewTuple(
		[]string{"id", "weight", "drivetrain", "manufacturer"},
		[]object.Value{object.NewInt(1), object.NewInt(100), object.NewRef(storage.NilOID), object.NewRef(storage.NilOID)},
	))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildPathIndex(cat, "Vehicle", []string{"drivetrain", "engine"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Errorf("null chain produced %d pairs", ix.Len())
	}
}
