package optimizer

import (
	"fmt"

	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/sql"
)

// SelKind classifies a predicate per Section 7.
type SelKind uint8

// The three selection classes plus the join class.
const (
	ImmediateSel SelKind = iota // s.A θ c, A atomic (or parameterless method)
	PathSel                     // s.A1...Am θ c, an implicit join chain
	OtherSel                    // methods with arguments, complex predicates
	JoinPred                    // path = other-range-variable (explicit join)
)

func (k SelKind) String() string {
	return [...]string{"immediate", "path", "other", "join"}[k]
}

// ImmSelInfo is one row of the Table 11 dictionary.
type ImmSelInfo struct {
	RangeVar  string
	Predicate expr.Expr
	Simple    sql.PathRef
	Op        expr.CmpOp
	Constant  object.Value
	Constant2 object.Value // BETWEEN
	// ConstParam/Const2Param are the 1-based plan-cache parameter indices of
	// the constants (0 when the constant is a plain literal). A cached plan
	// re-binds them from the new statement's literal values.
	ConstParam  int
	Const2Param int
	Between     bool
	Selectivity float64
	IndexedCost float64 // +Inf when no index exists
	SeqCost     float64
	AccessType  string // "indexed" or "sequential"
	Index       *catalog.Index
}

// PathSelInfo is one row of the Table 12 dictionary.
type PathSelInfo struct {
	RangeVar  string
	Predicate expr.Expr
	Path      cost.Path // typed hops
	Attrs     []string  // syntactic path A1..Am
	Op        expr.CmpOp
	Constant  object.Value
	Constant2 object.Value
	// Plan-cache parameter indices of the constants; see ImmSelInfo.
	ConstParam  int
	Const2Param int
	Between     bool
	Selectivity float64
	ForwardCost float64
	// Rank is F/(1-s), the Algorithm 8.1 sort key.
	Rank float64
}

// OtherSelInfo is one row of the OtherSelInfo dictionary; the paper notes
// its structure matches ImmSelInfo but costs are hard to estimate.
type OtherSelInfo struct {
	RangeVar  string
	Predicate expr.Expr
}

// JoinPredInfo is a predicate of the form path = var (an explicit join
// between range variables, like "c.drivetrain.engine = v" in the paper's
// Section 3.1 query).
type JoinPredInfo struct {
	LeftVar  string
	Path     []string // attributes from LeftVar; last hop lands on RightVar
	RightVar string
	Pred     expr.Expr
}

// Classified is the outcome of classifying one AND-term.
type Classified struct {
	Imm   map[string][]ImmSelInfo  // by range variable
	Paths map[string][]PathSelInfo // by range variable
	Other map[string][]OtherSelInfo
	Joins []JoinPredInfo
	// Residual predicates that reference several variables in ways other
	// than the join form; applied after all joins.
	Residual []expr.Expr
}

// classifier carries the schema and statistics context.
type classifier struct {
	cat   *catalog.Catalog
	stats *cost.Stats
	// varClass maps range variables to their FROM classes.
	varClass map[string]string
}

// varsOf collects the range variables an expression references.
func varsOf(e expr.Expr, into map[string]bool) {
	switch n := e.(type) {
	case *expr.Var:
		into[n.Name] = true
	case *expr.Field:
		varsOf(n.Base, into)
	case *expr.Call:
		varsOf(n.Base, into)
		for _, a := range n.Args {
			varsOf(a, into)
		}
	case *expr.Arith:
		varsOf(n.L, into)
		varsOf(n.R, into)
	case *expr.Cmp:
		varsOf(n.L, into)
		varsOf(n.R, into)
	case *expr.Between:
		varsOf(n.E, into)
		varsOf(n.Lo, into)
		varsOf(n.Hi, into)
	case *expr.Logic:
		varsOf(n.L, into)
		varsOf(n.R, into)
	case *expr.Not:
		varsOf(n.E, into)
	case *expr.Neg:
		varsOf(n.E, into)
	}
}

// constOf extracts a constant value (literal or folded expression) plus its
// plan-cache parameter index (0 for plain literals).
func constOf(e expr.Expr) (object.Value, int, bool) {
	if c, ok := e.(*expr.Const); ok {
		return c.Val, c.Param, true
	}
	return object.Null, 0, false
}

// Classify sorts the AND-term's predicates into the three dictionaries and
// the join list (Section 7's "we classify the selection predicates into
// three types").
func (c *classifier) Classify(term AndTerm) (*Classified, error) {
	out := &Classified{
		Imm:   map[string][]ImmSelInfo{},
		Paths: map[string][]PathSelInfo{},
		Other: map[string][]OtherSelInfo{},
	}
	for _, p := range term {
		if err := c.classifyOne(p, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *classifier) classifyOne(p expr.Expr, out *Classified) error {
	vars := map[string]bool{}
	varsOf(p, vars)
	var varList []string
	for v := range vars {
		if _, known := c.varClass[v]; known {
			varList = append(varList, v)
		}
	}

	// Multi-variable predicates: join form "path = var" or residual.
	if len(varList) >= 2 {
		if cmp, ok := p.(*expr.Cmp); ok && cmp.Op == expr.OpEq {
			if j, ok := c.asJoinPred(cmp.L, cmp.R, p); ok {
				out.Joins = append(out.Joins, j)
				return nil
			}
			if j, ok := c.asJoinPred(cmp.R, cmp.L, p); ok {
				out.Joins = append(out.Joins, j)
				return nil
			}
		}
		out.Residual = append(out.Residual, p)
		return nil
	}
	if len(varList) == 0 {
		out.Residual = append(out.Residual, p)
		return nil
	}
	v := varList[0]
	class := c.varClass[v]

	// Comparison / between against a constant?
	var lhs expr.Expr
	var op expr.CmpOp
	var cnst, cnst2 object.Value
	var cnstP, cnst2P int
	between := false
	switch n := p.(type) {
	case *expr.Cmp:
		if cv, cp, ok := constOf(n.R); ok {
			lhs, op, cnst, cnstP = n.L, n.Op, cv, cp
		} else if cv, cp, ok := constOf(n.L); ok {
			// c θ s.A  ≡  s.A θ' c with the operator mirrored.
			lhs, cnst, cnstP = n.R, cv, cp
			switch n.Op {
			case expr.OpGt:
				op = expr.OpLt
			case expr.OpLt:
				op = expr.OpGt
			case expr.OpGe:
				op = expr.OpLe
			case expr.OpLe:
				op = expr.OpGe
			default:
				op = n.Op
			}
		}
	case *expr.Between:
		lo, lp, ok1 := constOf(n.Lo)
		hi, hp, ok2 := constOf(n.Hi)
		if ok1 && ok2 {
			lhs, cnst, cnst2, cnstP, cnst2P, between = n.E, lo, hi, lp, hp, true
		}
	}
	if lhs == nil {
		out.Other[v] = append(out.Other[v], OtherSelInfo{RangeVar: v, Predicate: p})
		return nil
	}

	// Parameterless method on the range variable counts as immediate.
	if call, ok := lhs.(*expr.Call); ok {
		if base, isVar := call.Base.(*expr.Var); isVar && base.Name == v && len(call.Args) == 0 {
			out.Imm[v] = append(out.Imm[v], ImmSelInfo{
				RangeVar: v, Predicate: p,
				Op: op, Constant: cnst, Constant2: cnst2,
				ConstParam: cnstP, Const2Param: cnst2P, Between: between,
				Selectivity: defaultMethodSelectivity,
				IndexedCost: inf(), AccessType: "sequential",
			})
			return nil
		}
		out.Other[v] = append(out.Other[v], OtherSelInfo{RangeVar: v, Predicate: p})
		return nil
	}

	ref, ok := sql.PathOf(lhs)
	if !ok || ref.Var != v || len(ref.Path) == 0 {
		out.Other[v] = append(out.Other[v], OtherSelInfo{RangeVar: v, Predicate: p})
		return nil
	}

	if len(ref.Path) == 1 {
		// s.A θ c with A atomic: immediate selection.
		at, err := c.cat.AttributeType(class, ref.Path[0])
		if err != nil {
			return err
		}
		if at.Kind.IsAtomic() {
			info := ImmSelInfo{
				RangeVar: v, Predicate: p, Simple: ref,
				Op: op, Constant: cnst, Constant2: cnst2,
				ConstParam: cnstP, Const2Param: cnst2P, Between: between,
			}
			c.fillImmCosts(c.declaringClass(class, ref.Path[0]), &info)
			out.Imm[v] = append(out.Imm[v], info)
			return nil
		}
		// Reference-valued attribute compared to a constant — odd; other.
		out.Other[v] = append(out.Other[v], OtherSelInfo{RangeVar: v, Predicate: p})
		return nil
	}

	// Path selection.
	info := PathSelInfo{
		RangeVar: v, Predicate: p, Attrs: ref.Path,
		Op: op, Constant: cnst, Constant2: cnst2,
		ConstParam: cnstP, Const2Param: cnst2P, Between: between,
	}
	path, err := c.typedPath(class, ref.Path)
	if err != nil {
		return err
	}
	info.Path = path
	c.fillPathCosts(&info)
	out.Paths[v] = append(out.Paths[v], info)
	return nil
}

// asJoinPred recognizes "pathExpr = var": an explicit join predicate.
func (c *classifier) asJoinPred(l, r expr.Expr, orig expr.Expr) (JoinPredInfo, bool) {
	rv, ok := r.(*expr.Var)
	if !ok {
		return JoinPredInfo{}, false
	}
	if _, known := c.varClass[rv.Name]; !known {
		return JoinPredInfo{}, false
	}
	ref, ok := sql.PathOf(l)
	if !ok || len(ref.Path) == 0 {
		return JoinPredInfo{}, false
	}
	if _, known := c.varClass[ref.Var]; !known {
		return JoinPredInfo{}, false
	}
	return JoinPredInfo{LeftVar: ref.Var, Path: ref.Path, RightVar: rv.Name, Pred: orig}, true
}

// declaringClass finds the class on the IS-A chain that declares the
// attribute; statistics are recorded under the declaring class, so path
// hops must resolve to it (an Automobile's drivetrain statistics live on
// Vehicle).
func (c *classifier) declaringClass(class, attr string) string {
	cl, err := c.cat.Class(class)
	if err != nil {
		return class
	}
	if _, ok := cl.Tuple.Field(attr); ok {
		return class
	}
	for _, s := range cl.Supers {
		if got := c.declaringClass(s, attr); got != "" {
			if dcl, err := c.cat.Class(got); err == nil {
				if _, ok := dcl.Tuple.Field(attr); ok {
					return got
				}
			}
		}
	}
	return class
}

// typedPath resolves the classes along a syntactic path into a cost.Path.
func (c *classifier) typedPath(class string, attrs []string) (cost.Path, error) {
	var p cost.Path
	cur := class
	for i, a := range attrs {
		at, err := c.cat.AttributeType(cur, a)
		if err != nil {
			return p, err
		}
		isLast := i == len(attrs)-1
		switch {
		case at.Kind == object.KindReference,
			(at.Kind == object.KindSet || at.Kind == object.KindList) &&
				at.Elem != nil && at.Elem.Kind == object.KindReference:
			target := at.Target
			if at.Kind != object.KindReference {
				target = at.Elem.Target
			}
			p.Hops = append(p.Hops, cost.PathHop{Class: c.declaringClass(cur, a), Attribute: a})
			cur = target
		case at.Kind.IsAtomic() && isLast:
			p.FinalClass = cur
			p.FinalAttr = a
			return p, nil
		default:
			return p, fmt.Errorf("optimizer: attribute %s.%s cannot appear mid-path", cur, a)
		}
	}
	// Path ends on a reference hop (no atomic tail): the "final attribute"
	// is the last hop's target class itself.
	p.FinalClass = cur
	return p, nil
}

// defaultMethodSelectivity is the guess used for predicates whose
// selectivity cannot be estimated (the paper: "it is not so easy to
// calculate the selectivity" for such predicates).
const defaultMethodSelectivity = 0.5

func inf() float64 { return 1e308 }

// fillImmCosts computes Table 11's columns: selectivity, indexed access
// cost, sequential access cost, and the chosen access type (§8.1's cost_i).
func (c *classifier) fillImmCosts(class string, info *ImmSelInfo) {
	attr := info.Simple.Path[0]
	as, err := c.stats.Attr(class, attr)
	if err != nil {
		info.Selectivity = defaultMethodSelectivity
	} else {
		k, c1, c2 := cmpKindOf(info)
		info.Selectivity = as.Selectivity(k, c1, c2)
	}
	cs, err := c.stats.Class(class)
	if err == nil {
		info.SeqCost = c.stats.Disk.SEQCOST(float64(cs.NbPages))
	}
	info.IndexedCost = inf()
	info.AccessType = "sequential"
	ix := c.cat.IndexOn(class, attr)
	if ix == nil || ix.BTree() == nil {
		return
	}
	info.Index = ix
	bt := ix.BTree().Stats()
	idx := cost.BTreeStats{Order: bt.Order, Levels: bt.Levels, Leaves: bt.Leaves, KeySize: bt.KeySize, Unique: bt.Unique}
	// cost_i = INDCOST(1) for "=", RNGXCOST(f_s) otherwise (§8.1).
	if info.Op == expr.OpEq && !info.Between {
		info.IndexedCost = c.stats.INDCOST(idx, 1)
	} else {
		info.IndexedCost = c.stats.RNGXCOST(idx, info.Selectivity)
	}
	if info.IndexedCost < info.SeqCost {
		info.AccessType = "indexed"
	}
}

// cmpKindOf translates the predicate operator to the selectivity dispatch.
func cmpKindOf(info *ImmSelInfo) (cost.CmpKind, float64, float64) {
	c1, _ := info.Constant.AsFloat()
	c2, _ := info.Constant2.AsFloat()
	if info.Between {
		return cost.CmpBetween, c1, c2
	}
	switch info.Op {
	case expr.OpEq:
		return cost.CmpEq, c1, c2
	case expr.OpNe:
		return cost.CmpNe, c1, c2
	case expr.OpGt, expr.OpGe:
		return cost.CmpGt, c1, c2
	default:
		return cost.CmpLt, c1, c2
	}
}

// fillPathCosts computes Table 12's columns: the path selectivity f_s
// (Section 4.1) and the forward traversal cost F, plus the Algorithm 8.1
// rank F/(1-s).
func (c *classifier) fillPathCosts(info *PathSelInfo) {
	kind := cost.CmpEq
	c1, _ := info.Constant.AsFloat()
	c2, _ := info.Constant2.AsFloat()
	switch {
	case info.Between:
		kind = cost.CmpBetween
	case info.Op == expr.OpNe:
		kind = cost.CmpNe
	case info.Op == expr.OpGt || info.Op == expr.OpGe:
		kind = cost.CmpGt
	case info.Op == expr.OpLt || info.Op == expr.OpLe:
		kind = cost.CmpLt
	}
	sel, err := c.stats.PathSelectivity(info.Path, kind, c1, c2)
	if err != nil {
		sel = defaultMethodSelectivity
	}
	info.Selectivity = sel

	k := 1.0
	if len(info.Path.Hops) > 0 {
		if cs, err := c.stats.Class(info.Path.Hops[0].Class); err == nil {
			k = float64(cs.Card)
		}
	}
	f, err := c.stats.PathTraversalCost(info.Path, k)
	if err != nil {
		f = inf()
	}
	info.ForwardCost = f
	denom := 1 - info.Selectivity
	if denom <= 0 {
		denom = 1e-12
	}
	info.Rank = info.ForwardCost / denom
}
