// Crash-during-group-commit: concurrent committers share one leader force,
// and the crash lands exactly at a leader's force point — the moment a whole
// commit window is about to become durable at once. The invariants are the
// group-commit contract, stated so they hold under ANY goroutine
// interleaving (the workload is concurrent, so unlike crashtest.Run the
// per-run trace is not a pure function of the seed — only the fault plan and
// each worker's write content are):
//
//   - acked ⇒ durable: every Commit that returned nil survives recovery
//     byte-for-byte, even though its fsync was performed by another
//     session's leader;
//   - unacked ⇒ rolled back: every Commit that returned an error left its
//     commit record in the volatile log suffix (the fault fires before the
//     horizon advances), so recovery undoes the transaction completely — no
//     half-acknowledged window member is replayed.
package crashtest

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mood/internal/fault"
	"mood/internal/storage"
	"mood/internal/wal"
)

// GroupConfig sizes one crash-during-group-commit iteration. Zero values
// select CI-friendly defaults.
type GroupConfig struct {
	Seed          int64
	Workers       int // concurrent committing sessions
	TxnsPerWorker int
	WritesPerTxn  int
	Pages         int
	// CrashAtForce arms a hard crash at the Nth leader force (1-based).
	// 0 draws N from the seed in [1, TxnsPerWorker] — a successful force
	// acknowledges at most one queued commit per worker, so at least
	// TxnsPerWorker forces happen and the fault is guaranteed to fire.
	// Negative runs fault-free (the control: everything must be acked and
	// survive).
	CrashAtForce int64
	// SyncDelay is the simulated fsync latency; a nonzero delay holds the
	// leader in the force long enough for followers to pile into the window.
	SyncDelay time.Duration
}

func (c GroupConfig) withDefaults() GroupConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.TxnsPerWorker <= 0 {
		c.TxnsPerWorker = 6
	}
	if c.WritesPerTxn <= 0 {
		c.WritesPerTxn = 3
	}
	if c.Pages <= 0 {
		c.Pages = 4
	}
	if c.SyncDelay == 0 {
		c.SyncDelay = 200 * time.Microsecond
	}
	return c
}

// GroupResult reports one iteration, for coverage accounting. Acked/Failed
// counts depend on scheduling; Fired and the invariant verdict do not.
type GroupResult struct {
	Seed     int64
	Fired    bool // the armed force fault actually tripped
	Acked    int  // Commit calls that returned nil
	Failed   int  // Commit calls that returned an error
	Forces   int64
	Recovery wal.RecoveryStats
}

// groupTxn is one transaction's fate as observed by its session.
type groupTxn struct {
	writes map[storage.PageID]map[int]byte
	acked  bool
}

// RunGroup executes one crash-during-group-commit iteration and verifies the
// acked⇒durable / unacked⇒rolled-back invariants. Every error embeds
// cfg.Seed for replay.
func RunGroup(cfg GroupConfig) (GroupResult, error) {
	cfg = cfg.withDefaults()
	res := GroupResult{Seed: cfg.Seed}
	fail := func(format string, args ...interface{}) (GroupResult, error) {
		return res, fmt.Errorf("crashtest seed %d group-commit: %s",
			cfg.Seed, fmt.Sprintf(format, args...))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	disk.SetDoublewrite(true)
	// Frames cover the working set: no evictions, so the only OpLogFlush
	// occurrences are leader forces and the crash lands inside group commit.
	bp := storage.NewBufferPool(disk, cfg.Pages+2)
	log := wal.NewLog()
	bp.SetFlushHook(log.FlushHook())
	log.SetGroupCommit(true)
	log.SetSyncDelay(cfg.SyncDelay)

	pages := make([]storage.PageID, cfg.Pages)
	for i := range pages {
		pg, err := bp.NewPage()
		if err != nil {
			return fail("setup: %v", err)
		}
		pages[i] = pg.ID
		if err := bp.Unpin(pg.ID, true); err != nil {
			return fail("setup unpin: %v", err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		return fail("setup flush: %v", err)
	}

	fi := fault.New(cfg.Seed)
	crashAt := cfg.CrashAtForce
	if crashAt == 0 {
		crashAt = int64(1 + rng.Intn(cfg.TxnsPerWorker))
	}
	if crashAt > 0 {
		fi.FailAt(fault.OpLogFlush, crashAt, fault.Crash)
	}
	disk.SetFaultInjector(fi)
	log.SetFaultInjector(fi)

	// Every (worker, txn) pair owns a disjoint byte region of every page, so
	// the winner/loser checks are byte-exact regardless of interleaving.
	totalTxns := cfg.Workers * cfg.TxnsPerWorker
	regionBase := 32
	regionLen := (disk.PageSize() - regionBase) / totalTxns
	if regionLen < cfg.WritesPerTxn {
		return fail("too many transactions (%d) for the page size", totalTxns)
	}

	// Workers commit concurrently; each one's write content is a pure
	// function of (seed, worker), only the window membership is scheduled.
	txns := make([][]groupTxn, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		txns[w] = make([]groupTxn, 0, cfg.TxnsPerWorker)
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(cfg.Seed ^ int64(0x9e3779b9*uint32(w+1))))
			for t := 0; t < cfg.TxnsPerWorker; t++ {
				tx := log.Begin()
				region := regionBase + (w*cfg.TxnsPerWorker+t)*regionLen
				writes := map[storage.PageID]map[int]byte{}
				ok := true
				for i := 0; i < cfg.WritesPerTxn; i++ {
					p := pages[wrng.Intn(len(pages))]
					off := region + wrng.Intn(regionLen)
					val := byte(1 + wrng.Intn(255))
					if err := loggedWrite(log, bp, tx, p, off, val); err != nil {
						ok = false // post-crash append; the tx is a loser
						break
					}
					if writes[p] == nil {
						writes[p] = map[int]byte{}
					}
					writes[p][off] = val
				}
				// One straggler txn per worker pauses between its updates and
				// its commit, so concurrent leaders force the updates durable
				// first. If the crash then kills this commit, recovery finds
				// a loser with durable updates and must genuinely undo them —
				// without this, losers only ever live in the truncated
				// volatile suffix and the undo pass goes untested here.
				if ok && t == w%cfg.TxnsPerWorker {
					time.Sleep(2 * cfg.SyncDelay)
				}
				acked := false
				if ok {
					// On error the transaction stays active with a volatile
					// commit record; it must NOT be aborted (wal.Commit's
					// contract) — it is a loser for recovery to undo.
					acked = log.Commit(tx) == nil
				}
				txns[w] = append(txns[w], groupTxn{writes: writes, acked: acked})
				if acked {
					continue
				}
				// The crash has fired (the only armed fault is hard); every
				// later operation fails too, so this session stops here.
				return
			}
		}()
	}
	wg.Wait()
	res.Fired = len(fi.Trips()) > 0
	res.Forces = log.FlushCount()
	if crashAt > 0 && !res.Fired {
		return fail("armed force crash at occurrence %d never fired (%d forces)", crashAt, res.Forces)
	}

	// ---- Reboot ----
	disk.SetFaultInjector(nil)
	log.SetFaultInjector(nil)
	for _, id := range disk.CorruptPages() {
		if err := disk.RepairPage(id); err != nil {
			return fail("repair page %d: %v", id, err)
		}
	}
	bp2 := storage.NewBufferPool(disk, cfg.Pages+8)
	bp2.SetFlushHook(log.FlushHook())
	st, err := log.Recover(bp2)
	if err != nil {
		return fail("recovery: %v", err)
	}
	res.Recovery = st

	// ---- Invariants ----
	for w := range txns {
		for t, txn := range txns[w] {
			if txn.acked {
				res.Acked++
			} else {
				res.Failed++
			}
			for p, offs := range txn.writes {
				pg, err := bp2.Fetch(p)
				if err != nil {
					return fail("fetch page %d: %v", p, err)
				}
				buf := pg.Bytes()
				for off, want := range offs {
					got := buf[off]
					if txn.acked && got != want {
						bp2.Unpin(p, false)
						return fail("acked commit lost: worker %d txn %d page %d off %d = %d, want %d",
							w, t, p, off, got, want)
					}
					if !txn.acked && got != 0 {
						bp2.Unpin(p, false)
						return fail("unacked commit replayed: worker %d txn %d page %d off %d = %d",
							w, t, p, off, got)
					}
				}
				if err := bp2.Unpin(p, false); err != nil {
					return fail("unpin: %v", err)
				}
			}
		}
	}
	if crashAt < 0 && res.Failed != 0 {
		return fail("fault-free control run failed %d commits", res.Failed)
	}
	// Each successful force has exactly one leader whose commit it acks, so
	// forces never exceed acked commits; fewer means windows actually formed.
	if res.Acked > 0 && res.Forces > int64(res.Acked) {
		return fail("%d forces for %d acked commits: group commit not amortizing", res.Forces, res.Acked)
	}
	if active := log.ActiveTransactions(); len(active) != 0 {
		return fail("transactions still active after recovery: %v", active)
	}
	if err := bp2.FlushAll(); err != nil {
		return fail("post-recovery flush: %v", err)
	}
	if bad := disk.CorruptPages(); len(bad) != 0 {
		return fail("checksum mismatches after recovery: pages %v", bad)
	}
	return res, nil
}
