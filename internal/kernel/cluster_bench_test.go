package kernel

import (
	"testing"

	"mood/internal/vehicledb"
)

// The clustering tracer rides the hot path of every batched dereference, so
// its overhead budget is explicit: with sampling on, a warm reference
// traversal must cost within a few percent of the tracer-off run (compare
// the two benchmarks below), and with the tracer disabled the hooks must
// not fire at all (internal/cluster pins that to zero allocations). The
// test at the bottom keeps the deterministic half of the claim in CI:
// sampling must change neither the rows nor the warm-path page reads, and
// its steady-state allocation cost per query must be marginal.

const benchTraversalQuery = `SELECT v.id, v.weight FROM Vehicle v WHERE v.drivetrain.engine.cylinders >= 2`

// buildBenchVehicleDB is buildShardVehicleDB with a configurable sampling
// rate, so the off/on comparisons differ in nothing but the tracer.
func buildBenchVehicleDB(tb testing.TB, sampleEvery int) *DB {
	tb.Helper()
	opts := shardOptions(0, 0)
	opts.ClusterSampleEvery = sampleEvery
	db, err := Open(opts)
	if err != nil {
		tb.Fatal(err)
	}
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		tb.Fatal(err)
	}
	cfg := vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5, Subclasses: true,
	}
	if _, err := vehicledb.Populate(db.Cat, cfg); err != nil {
		tb.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		tb.Fatal(err)
	}
	return db
}

func benchWarmTraversal(b *testing.B, sampleEvery int) {
	db := buildBenchVehicleDB(b, sampleEvery)
	// One pass warms the buffer pool and settles plan statistics; the
	// measured loop is pure execution.
	if _, err := db.Execute(benchTraversalQuery); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := db.Execute(benchTraversalQuery)
		if err != nil {
			b.Fatal(err)
		}
		rows += len(res.Rows)
	}
	if rows == 0 {
		b.Fatal("traversal returned no rows")
	}
}

func BenchmarkWarmTraversalClusterOff(b *testing.B)     { benchWarmTraversal(b, 0) }
func BenchmarkWarmTraversalClusterSampled(b *testing.B) { benchWarmTraversal(b, 1) }

// TestClusterSamplingIsFreeOnWarmPath is the deterministic overhead guard:
// the tracer at sampling rate 1 (every observation recorded — the worst
// case) must leave a warm traversal's results and page reads untouched,
// and once its co-access maps have seen the workload, the per-query
// allocation surcharge must be a rounding error next to execution itself.
func TestClusterSamplingIsFreeOnWarmPath(t *testing.T) {
	off := buildBenchVehicleDB(t, 0)
	on := buildBenchVehicleDB(t, 1)

	run := func(db *DB) (string, int64) {
		t.Helper()
		before := db.Store.ShardReads()
		res, err := db.Execute(benchTraversalQuery)
		if err != nil {
			t.Fatal(err)
		}
		var reads int64
		for sh, r := range db.Store.ShardReads() {
			reads += r - before[sh]
		}
		return fingerprint(res, true), reads
	}

	// First pass on each absorbs the cold reads; after that the buffer pool
	// holds the working set and every execution must be read-free — tracing
	// observes accesses, it must never cause any.
	run(off)
	run(on)
	for i := 0; i < 10; i++ {
		fpOff, readsOff := run(off)
		fpOn, readsOn := run(on)
		if fpOff != fpOn {
			t.Fatalf("pass %d: sampling changed the result:\n--- off ---\n%s--- on ---\n%s", i, fpOff, fpOn)
		}
		if readsOff != 0 || readsOn != 0 {
			t.Fatalf("pass %d: warm traversal read pages (off=%d on=%d)", i, readsOff, readsOn)
		}
	}

	// Steady state: the tracer's stripe maps have seen every key this
	// workload produces, so recording is in-place counter bumps. Allow the
	// sampled run a small absolute slack over tracer-off, but nothing that
	// would register against the thousands of allocations one execution
	// already costs.
	allocsOff := testing.AllocsPerRun(20, func() {
		if _, err := off.Execute(benchTraversalQuery); err != nil {
			t.Fatal(err)
		}
	})
	allocsOn := testing.AllocsPerRun(20, func() {
		if _, err := on.Execute(benchTraversalQuery); err != nil {
			t.Fatal(err)
		}
	})
	if allocsOn > allocsOff*1.05+32 {
		t.Errorf("sampling costs %.1f allocs/query vs %.1f with the tracer off", allocsOn, allocsOff)
	}
	t.Logf("allocs/query: tracer off %.1f, sampled %.1f", allocsOff, allocsOn)
}
