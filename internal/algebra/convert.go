package algebra

import (
	"fmt"

	"mood/internal/object"
	"mood/internal/storage"
)

// AsSet converts arg to a set of object identifiers (Table 5): the object
// identifiers of an extent's objects, of a set or list's elements, or of a
// named object.
func (a *Algebra) AsSet(arg *Collection) *Collection {
	out := &Collection{Kind: SetKind, Name: arg.Name, Class: arg.Class}
	seen := map[storage.OID]bool{}
	for _, r := range arg.Rows {
		oid := r.Vars[arg.Name].OID
		if oid.IsNil() || seen[oid] {
			continue
		}
		seen[oid] = true
		out.Rows = append(out.Rows, Row{Vars: map[string]Bound{arg.Name: {OID: oid}}})
	}
	return out
}

// AsList converts arg to a list of object identifiers (Table 5), preserving
// order and duplicates.
func (a *Algebra) AsList(arg *Collection) *Collection {
	out := &Collection{Kind: ListKind, Name: arg.Name, Class: arg.Class}
	for _, r := range arg.Rows {
		oid := r.Vars[arg.Name].OID
		if oid.IsNil() {
			continue
		}
		out.Rows = append(out.Rows, Row{Vars: map[string]Bound{arg.Name: {OID: oid}}})
	}
	return out
}

// AsExtent converts a set or list into the extent of the dereferenced
// objects of its elements (Table 6).
func (a *Algebra) AsExtent(arg *Collection) (*Collection, error) {
	if arg.Kind != SetKind && arg.Kind != ListKind {
		return nil, fmt.Errorf("%w: asExtent on %s", ErrNotApplicable, arg.Kind)
	}
	out := &Collection{Kind: ExtentKind, Name: arg.Name, Class: arg.Class}
	for _, r := range arg.Rows {
		b := r.Vars[arg.Name]
		if err := a.materialize(&b); err != nil {
			return nil, err
		}
		nr := Row{Vars: make(map[string]Bound, len(r.Vars))}
		for k, v := range r.Vars {
			nr.Vars[k] = v
		}
		nr.Vars[arg.Name] = b
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Unnest is the 1NF unnest borrowed from the nested relational algebra
// (Table 7): each tuple with a set/list-valued attribute produces one
// output tuple per element. The paper's example:
//
//	e  = {<o1,{o2,o3}>, <o4,{o5}>}
//	e' = {<o1,o2>, <o1,o3>, <o4,o5>}
//
// The argument may be an extent of tuple objects, a set or list of object
// identifiers of tuple objects, or a single tuple object; the result is
// always an extent of tuples.
func (a *Algebra) Unnest(arg *Collection, attr string) (*Collection, error) {
	out := &Collection{Kind: ExtentKind, Name: arg.Name, Class: ""}
	for _, r := range arg.Rows {
		b := r.Vars[arg.Name]
		if err := a.materialize(&b); err != nil {
			return nil, err
		}
		if b.Val.Kind != object.KindTuple {
			return nil, fmt.Errorf("%w: Unnest of non-tuple element", ErrNotApplicable)
		}
		av, ok := b.Val.Field(attr)
		if !ok {
			return nil, fmt.Errorf("algebra: Unnest attribute %q missing", attr)
		}
		if av.Kind != object.KindSet && av.Kind != object.KindList {
			return nil, fmt.Errorf("%w: Unnest attribute %q is %s", ErrNotApplicable, attr, av.Kind)
		}
		for _, elem := range av.Elems {
			tup := b.Val.Clone()
			tup.SetField(attr, elem)
			out.Rows = append(out.Rows, Row{Vars: map[string]Bound{arg.Name: {Val: tup}}})
		}
	}
	return out, nil
}

// Nest is the inverse of Unnest: tuples agreeing on every attribute except
// attr are merged, their attr values collected into a set.
func (a *Algebra) Nest(arg *Collection, attr string) (*Collection, error) {
	out := &Collection{Kind: ExtentKind, Name: arg.Name, Class: ""}
	type group struct {
		proto object.Value
		set   object.Value
	}
	var order []string
	groups := map[string]*group{}
	for _, r := range arg.Rows {
		b := r.Vars[arg.Name]
		if err := a.materialize(&b); err != nil {
			return nil, err
		}
		if b.Val.Kind != object.KindTuple {
			return nil, fmt.Errorf("%w: Nest of non-tuple element", ErrNotApplicable)
		}
		av, ok := b.Val.Field(attr)
		if !ok {
			return nil, fmt.Errorf("algebra: Nest attribute %q missing", attr)
		}
		rest := b.Val.Clone()
		rest.SetField(attr, object.Null)
		key := rest.String()
		g, exists := groups[key]
		if !exists {
			g = &group{proto: rest, set: object.Value{Kind: object.KindSet}}
			groups[key] = g
			order = append(order, key)
		}
		g.set.SetAdd(av)
	}
	for _, key := range order {
		g := groups[key]
		tup := g.proto
		tup.SetField(attr, g.set)
		out.Rows = append(out.Rows, Row{Vars: map[string]Bound{arg.Name: {Val: tup}}})
	}
	return out, nil
}

// Flatten converts a set/list of sets/lists of object identifiers into the
// set of object identifiers:
//
//	Flatten({{oid1, oid2}, {oid3}}) = {oid1, oid2, oid3}
//
// The result is always a set.
func Flatten(v object.Value) (object.Value, error) {
	if v.Kind != object.KindSet && v.Kind != object.KindList {
		return object.Null, fmt.Errorf("%w: Flatten of %s", ErrNotApplicable, v.Kind)
	}
	out := object.Value{Kind: object.KindSet}
	for _, e := range v.Elems {
		switch e.Kind {
		case object.KindSet, object.KindList:
			for _, inner := range e.Elems {
				out.SetAdd(inner)
			}
		default:
			out.SetAdd(e)
		}
	}
	return out, nil
}

// FlattenCollection flattens a collection whose primary values are
// sets/lists of references into a Set collection of the inner OIDs.
func (a *Algebra) FlattenCollection(arg *Collection) (*Collection, error) {
	out := &Collection{Kind: SetKind, Name: arg.Name, Class: arg.Class}
	seen := map[storage.OID]bool{}
	for _, r := range arg.Rows {
		b := r.Vars[arg.Name]
		if err := a.materialize(&b); err != nil {
			return nil, err
		}
		if b.Val.Kind != object.KindSet && b.Val.Kind != object.KindList {
			return nil, fmt.Errorf("%w: Flatten element of kind %s", ErrNotApplicable, b.Val.Kind)
		}
		flat, err := Flatten(b.Val)
		if err != nil {
			return nil, err
		}
		for _, e := range flat.Elems {
			if e.Kind == object.KindReference && !e.Ref.IsNil() && !seen[e.Ref] {
				seen[e.Ref] = true
				out.Rows = append(out.Rows, Row{Vars: map[string]Bound{arg.Name: {OID: e.Ref}}})
			}
		}
	}
	return out, nil
}
