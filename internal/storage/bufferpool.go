package storage

import (
	"fmt"
	"sync"
)

// BufferPool caches disk pages in a fixed number of frames, replacing
// unpinned frames with the clock (second-chance) algorithm. ESM provides the
// equivalent buffer management for MOOD; the cost formulas of Section 6 are
// "worst case ... where there are no page hits in the buffer", so benches can
// size the pool down to 1 frame to reproduce that regime, or up to measure
// hit-rate effects.
type BufferPool struct {
	disk *DiskSim

	mu      sync.Mutex
	frames  []frame
	table   map[PageID]int // page -> frame index
	hand    int
	hits    int64
	misses  int64
	flushes int64
	// flushLSN, when set, is consulted before evicting a dirty page so the
	// WAL can enforce write-ahead: all log records up to the page LSN must
	// be durable before the page goes to disk.
	flushLSN func(lsn uint32) error
}

type frame struct {
	id     PageID
	buf    []byte
	pin    int
	dirty  bool
	refbit bool
	valid  bool
}

// NewBufferPool creates a pool of n frames over the disk.
func NewBufferPool(disk *DiskSim, n int) *BufferPool {
	if n < 1 {
		n = 1
	}
	bp := &BufferPool{
		disk:   disk,
		frames: make([]frame, n),
		table:  make(map[PageID]int, n),
	}
	for i := range bp.frames {
		bp.frames[i].buf = make([]byte, disk.PageSize())
	}
	return bp
}

// SetFlushHook installs the WAL write-ahead callback invoked with a page's
// LSN before the page is written out.
func (bp *BufferPool) SetFlushHook(fn func(lsn uint32) error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.flushLSN = fn
}

// Disk returns the underlying simulated disk.
func (bp *BufferPool) Disk() *DiskSim { return bp.disk }

// Size returns the number of frames.
func (bp *BufferPool) Size() int { return len(bp.frames) }

// HitRate returns the fraction of Fetch calls served from the pool.
func (bp *BufferPool) HitRate() float64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	total := bp.hits + bp.misses
	if total == 0 {
		return 0
	}
	return float64(bp.hits) / float64(total)
}

// Stats returns (hits, misses, flushes).
func (bp *BufferPool) Stats() (hits, misses, flushes int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses, bp.flushes
}

// NewPage allocates a fresh disk page, pins it, and returns it formatted as
// raw zeroes (callers format it). The page is marked dirty.
func (bp *BufferPool) NewPage() (*Page, error) {
	id := bp.disk.AllocPage()
	bp.mu.Lock()
	defer bp.mu.Unlock()
	idx, err := bp.victimLocked()
	if err != nil {
		return nil, err
	}
	f := &bp.frames[idx]
	for i := range f.buf {
		f.buf[i] = 0
	}
	f.id, f.pin, f.dirty, f.refbit, f.valid = id, 1, true, true, true
	bp.table[id] = idx
	return NewPage(id, f.buf), nil
}

// Fetch pins the page and returns it, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	if idx, ok := bp.table[id]; ok {
		f := &bp.frames[idx]
		f.pin++
		f.refbit = true
		bp.hits++
		bp.mu.Unlock()
		return NewPage(id, f.buf), nil
	}
	bp.misses++
	idx, err := bp.victimLocked()
	if err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	f := &bp.frames[idx]
	f.id, f.pin, f.dirty, f.refbit, f.valid = id, 1, false, true, true
	bp.table[id] = idx
	buf := f.buf
	bp.mu.Unlock()

	// Read outside bp.mu so concurrent hits proceed; the frame is pinned so
	// it cannot be stolen meanwhile.
	if err := bp.disk.ReadPage(id, buf); err != nil {
		bp.mu.Lock()
		f.pin--
		f.valid = false
		delete(bp.table, id)
		bp.mu.Unlock()
		return nil, err
	}
	return NewPage(id, buf), nil
}

// MarkDirty records that the pinned page has been modified.
func (bp *BufferPool) MarkDirty(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if idx, ok := bp.table[id]; ok {
		bp.frames[idx].dirty = true
	}
}

// Unpin releases one pin on the page; dirty additionally marks it modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	idx, ok := bp.table[id]
	if !ok {
		return fmt.Errorf("storage: unpin of page %d not in pool", id)
	}
	f := &bp.frames[idx]
	if f.pin <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	f.pin--
	if dirty {
		f.dirty = true
	}
	return nil
}

// FlushPage forces the page to disk if it is dirty.
func (bp *BufferPool) FlushPage(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	idx, ok := bp.table[id]
	if !ok {
		return nil
	}
	return bp.writeOutLocked(idx)
}

// FlushAll forces every dirty page to disk.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		if err := bp.writeOutLocked(i); err != nil {
			return err
		}
	}
	return nil
}

// EvictAll flushes and invalidates every unpinned frame, leaving the pool
// cold (measurement harnesses use it to defeat cache warm-up).
func (bp *BufferPool) EvictAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		f := &bp.frames[i]
		if !f.valid || f.pin > 0 {
			continue
		}
		if err := bp.writeOutLocked(i); err != nil {
			return err
		}
		delete(bp.table, f.id)
		f.valid = false
	}
	return nil
}

// Drop removes the page from the pool without writing it (used when a page
// is freed).
func (bp *BufferPool) Drop(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if idx, ok := bp.table[id]; ok {
		bp.frames[idx] = frame{buf: bp.frames[idx].buf}
		delete(bp.table, id)
	}
}

// writeOutLocked flushes frame i if valid and dirty. Caller holds bp.mu.
func (bp *BufferPool) writeOutLocked(i int) error {
	f := &bp.frames[i]
	if !f.valid || !f.dirty {
		return nil
	}
	if bp.flushLSN != nil {
		lsn := NewPage(f.id, f.buf).LSN()
		if err := bp.flushLSN(lsn); err != nil {
			return err
		}
	}
	if err := bp.disk.WritePage(f.id, f.buf); err != nil {
		return err
	}
	f.dirty = false
	bp.flushes++
	return nil
}

// victimLocked finds a free or evictable frame using the clock algorithm,
// flushing the victim if dirty. Caller holds bp.mu.
func (bp *BufferPool) victimLocked() (int, error) {
	n := len(bp.frames)
	for scanned := 0; scanned < 2*n; scanned++ {
		i := bp.hand
		bp.hand = (bp.hand + 1) % n
		f := &bp.frames[i]
		if !f.valid {
			return i, nil
		}
		if f.pin > 0 {
			continue
		}
		if f.refbit {
			f.refbit = false
			continue
		}
		if err := bp.writeOutLocked(i); err != nil {
			return 0, err
		}
		delete(bp.table, f.id)
		f.valid = false
		return i, nil
	}
	return 0, ErrBufferBusy
}
