package object

import (
	"fmt"
	"strings"
)

// Type describes a MOOD type: a basic type, or a complex type built by
// recursive application of the Tuple, Set, List and Reference constructors
// (Section 2: "A complex type may be created by using basic types and
// recursive application of the type constructors").
type Type struct {
	Kind   Kind
	Name   string  // optional: the name of a named type or class
	StrLen int     // String(n) bound; 0 means unbounded
	Elem   *Type   // Set, List element type
	Target string  // Reference target class name
	Fields []Field // Tuple fields, in declaration order
}

// Field is one attribute of a tuple type.
type Field struct {
	Name string
	Type *Type
}

// Pre-built basic types.
var (
	TInteger     = &Type{Kind: KindInteger}
	TLongInteger = &Type{Kind: KindLongInteger}
	TFloat       = &Type{Kind: KindFloat}
	TChar        = &Type{Kind: KindChar}
	TBoolean     = &Type{Kind: KindBoolean}
	TString      = &Type{Kind: KindString}
)

// StringN returns a bounded String(n) type, as in the paper's
// "transmission String(32)".
func StringN(n int) *Type { return &Type{Kind: KindString, StrLen: n} }

// SetOf returns a Set type.
func SetOf(elem *Type) *Type { return &Type{Kind: KindSet, Elem: elem} }

// ListOf returns a List type.
func ListOf(elem *Type) *Type { return &Type{Kind: KindList, Elem: elem} }

// RefTo returns a Reference type to the named class.
func RefTo(class string) *Type { return &Type{Kind: KindReference, Target: class} }

// TupleOf returns a Tuple type with the given fields.
func TupleOf(fields ...Field) *Type { return &Type{Kind: KindTuple, Fields: fields} }

// Field returns the tuple field with the given name.
func (t *Type) Field(name string) (*Field, bool) {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i], true
		}
	}
	return nil, false
}

// String renders the type in MOODSQL DDL style.
func (t *Type) String() string {
	if t == nil {
		return "?"
	}
	switch t.Kind {
	case KindInteger:
		return "Integer"
	case KindLongInteger:
		return "LongInteger"
	case KindFloat:
		return "Float"
	case KindChar:
		return "Char"
	case KindBoolean:
		return "Boolean"
	case KindString:
		if t.StrLen > 0 {
			return fmt.Sprintf("String(%d)", t.StrLen)
		}
		return "String"
	case KindSet:
		return "SET (" + t.Elem.String() + ")"
	case KindList:
		return "LIST (" + t.Elem.String() + ")"
	case KindReference:
		return "REFERENCE (" + t.Target + ")"
	case KindTuple:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.Name + " " + f.Type.String()
		}
		return "TUPLE (" + strings.Join(parts, ", ") + ")"
	}
	return t.Kind.String()
}

// Zero returns the zero value of the type (null for references).
func (t *Type) Zero() Value {
	switch t.Kind {
	case KindInteger:
		return NewInt(0)
	case KindLongInteger:
		return NewLong(0)
	case KindFloat:
		return NewFloat(0)
	case KindString:
		return NewString("")
	case KindChar:
		return NewChar(0)
	case KindBoolean:
		return NewBool(false)
	case KindSet:
		return Value{Kind: KindSet}
	case KindList:
		return Value{Kind: KindList}
	case KindReference:
		return Value{Kind: KindReference}
	case KindTuple:
		names := make([]string, len(t.Fields))
		fields := make([]Value, len(t.Fields))
		for i, f := range t.Fields {
			names[i] = f.Name
			fields[i] = f.Type.Zero()
		}
		return NewTuple(names, fields)
	}
	return Null
}

// Check verifies that v structurally conforms to t. Null conforms to any
// type (attributes may be null; the notnull(A,C) statistic measures how
// often they are not). Numeric widening (Integer into LongInteger/Float) is
// accepted, matching the run-time casts of the expression interpreter.
func (t *Type) Check(v Value) error {
	if v.IsNull() {
		return nil
	}
	switch t.Kind {
	case KindInteger:
		if v.Kind != KindInteger {
			return typeErr(t, v)
		}
	case KindLongInteger:
		if v.Kind != KindInteger && v.Kind != KindLongInteger {
			return typeErr(t, v)
		}
	case KindFloat:
		if v.Kind != KindFloat && v.Kind != KindInteger && v.Kind != KindLongInteger {
			return typeErr(t, v)
		}
	case KindString:
		if v.Kind != KindString {
			return typeErr(t, v)
		}
		if t.StrLen > 0 && len(v.Str) > t.StrLen {
			return fmt.Errorf("object: string %q exceeds String(%d)", v.Str, t.StrLen)
		}
	case KindChar:
		if v.Kind != KindChar {
			return typeErr(t, v)
		}
	case KindBoolean:
		if v.Kind != KindBoolean {
			return typeErr(t, v)
		}
	case KindReference:
		if v.Kind != KindReference {
			return typeErr(t, v)
		}
	case KindSet, KindList:
		if v.Kind != t.Kind {
			return typeErr(t, v)
		}
		for i := range v.Elems {
			if err := t.Elem.Check(v.Elems[i]); err != nil {
				return err
			}
		}
	case KindTuple:
		if v.Kind != KindTuple {
			return typeErr(t, v)
		}
		for _, f := range t.Fields {
			fv, ok := v.Field(f.Name)
			if !ok {
				continue // missing fields read as null
			}
			if err := f.Type.Check(fv); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
		for _, n := range v.Names {
			if _, ok := t.Field(n); !ok {
				return fmt.Errorf("object: unknown field %q for type %s", n, t)
			}
		}
	}
	return nil
}

func typeErr(t *Type, v Value) error {
	return fmt.Errorf("object: value %s does not conform to type %s", v, t)
}
