package algebra

import (
	"fmt"
	"sort"
	"strings"

	"mood/internal/object"
	"mood/internal/storage"
)

// ProjItem is one entry of a projection list: a path rooted at a range
// variable, optionally renamed.
type ProjItem struct {
	Var  string
	Path []string // empty: the whole object
	As   string   // output field name; defaults to the last path component
}

// OutName returns the output field name.
func (p ProjItem) OutName() string {
	if p.As != "" {
		return p.As
	}
	if len(p.Path) > 0 {
		return p.Path[len(p.Path)-1]
	}
	return p.Var
}

func (p ProjItem) String() string {
	s := p.Var
	if len(p.Path) > 0 {
		s += "." + strings.Join(p.Path, ".")
	}
	return s
}

// followPath walks a path from a value, dereferencing references.
func (a *Algebra) followPath(v object.Value, path []string) (object.Value, error) {
	cur := v
	for _, attr := range path {
		if cur.Kind == object.KindReference {
			if cur.Ref.IsNil() {
				return object.Null, nil
			}
			var err error
			if cur, _, err = a.Cat.GetObject(cur.Ref); err != nil {
				return object.Null, err
			}
		}
		if cur.Kind != object.KindTuple {
			return object.Null, nil
		}
		f, ok := cur.Field(attr)
		if !ok {
			return object.Null, nil
		}
		cur = f
	}
	return cur, nil
}

// Project is the Project operator: "the result of the operator Project is
// the extent of the tuple type values projected onto attribute_list"; list
// and set arguments have their elements dereferenced first. Since MOOD
// allows dynamic schema changes, these anonymous tuples could be promoted
// to a class; here they form an anonymous extent.
func (a *Algebra) Project(arg *Collection, items []ProjItem) (*Collection, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("algebra: empty projection list")
	}
	out := &Collection{Kind: ExtentKind, Name: arg.Name, Class: ""}
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.OutName()
	}
	for i := range arg.Rows {
		row := arg.Rows[i]
		fields := make([]object.Value, len(items))
		for j, it := range items {
			b, ok := row.Vars[it.Var]
			if !ok {
				return nil, fmt.Errorf("algebra: projection variable %s unbound", it.Var)
			}
			if err := a.materialize(&b); err != nil {
				return nil, err
			}
			if len(it.Path) == 0 {
				fields[j] = b.Val
				continue
			}
			v, err := a.followPath(b.Val, it.Path)
			if err != nil {
				return nil, err
			}
			fields[j] = v
		}
		tup := object.NewTuple(names, fields)
		out.Rows = append(out.Rows, Row{Vars: map[string]Bound{arg.Name: {Val: tup}}})
	}
	return out, nil
}

// Partition divides the collection into groups of rows agreeing on the
// attribute list of the distinguished variable; the return value is the set
// of groups (partitions).
func (a *Algebra) Partition(arg *Collection, attrs []string) ([]*Collection, error) {
	groups := map[string]*Collection{}
	var order []string
	for i := range arg.Rows {
		row := arg.Rows[i]
		b := row.Vars[arg.Name]
		if err := a.materialize(&b); err != nil {
			return nil, err
		}
		row.Vars[arg.Name] = b
		keyParts := make([]string, len(attrs))
		for j, attr := range attrs {
			v, err := a.followPath(b.Val, []string{attr})
			if err != nil {
				return nil, err
			}
			keyParts[j] = v.String()
		}
		key := strings.Join(keyParts, "\x00")
		g, ok := groups[key]
		if !ok {
			g = &Collection{Kind: arg.Kind, Name: arg.Name, Class: arg.Class}
			groups[key] = g
			order = append(order, key)
		}
		g.Rows = append(g.Rows, row)
	}
	out := make([]*Collection, len(order))
	for i, k := range order {
		out[i] = groups[k]
	}
	return out, nil
}

// SortKey orders rows by one attribute path of a variable.
type SortKey struct {
	Var  string
	Path []string
	Desc bool
}

// Sort sorts the collection by the key list "without duplicate
// elimination", using heap sort with run merging — the paper's only
// supported sort method. Sets and lists are sorted by their dereferenced
// objects' attributes; the result keeps the argument's kind (sorted set,
// sorted list, or sorted extent).
func (a *Algebra) Sort(arg *Collection, keys []SortKey) (*Collection, error) {
	out := &Collection{Kind: arg.Kind, Name: arg.Name, Class: arg.Class}
	out.Rows = append([]Row(nil), arg.Rows...)
	// Precompute key values (dereferencing set/list OIDs as the paper
	// notes the sort operator must).
	keyVals := make([][]object.Value, len(out.Rows))
	for i := range out.Rows {
		vals := make([]object.Value, len(keys))
		for j, k := range keys {
			varName := k.Var
			if varName == "" {
				varName = arg.Name
			}
			b := out.Rows[i].Vars[varName]
			if err := a.materialize(&b); err != nil {
				return nil, err
			}
			v, err := a.followPath(b.Val, k.Path)
			if err != nil {
				return nil, err
			}
			vals[j] = v
		}
		keyVals[i] = vals
	}
	heapSortMerge(out.Rows, keyVals, keys)
	return out, nil
}

// valLess compares two key vectors under the key list's directions; nulls
// and incomparables order by their rendering, stably.
func valLess(keys []SortKey, a, b []object.Value) bool {
	for j := range keys {
		cmp, ok := object.Compare(a[j], b[j])
		if !ok {
			sx, sy := a[j].String(), b[j].String()
			if sx == sy {
				continue
			}
			cmp = strings.Compare(sx, sy)
		}
		if cmp == 0 {
			continue
		}
		if keys[j].Desc {
			return cmp > 0
		}
		return cmp < 0
	}
	return false
}

// heapSortMerge implements "heap sort with merging": the input is split
// into runs, each heap-sorted, and the runs merged — the external-sort
// shape the paper names, executed in memory.
func heapSortMerge(rows []Row, keyVals [][]object.Value, keys []SortKey) {
	n := len(rows)
	if n < 2 {
		return
	}
	less := func(i, j int) bool { return valLess(keys, keyVals[i], keyVals[j]) }
	swap := func(i, j int) {
		rows[i], rows[j] = rows[j], rows[i]
		keyVals[i], keyVals[j] = keyVals[j], keyVals[i]
	}
	const runSize = 1024
	// Heap-sort each run.
	for start := 0; start < n; start += runSize {
		end := start + runSize
		if end > n {
			end = n
		}
		heapSortRange(start, end, less, swap)
	}
	if n <= runSize {
		return
	}
	// Merge runs pairwise until one remains.
	for width := runSize; width < n; width *= 2 {
		for start := 0; start < n; start += 2 * width {
			mid := start + width
			end := start + 2*width
			if mid >= n {
				break
			}
			if end > n {
				end = n
			}
			mergeRange(rows, keyVals, start, mid, end, keys)
		}
	}
}

func heapSortRange(lo, hi int, less func(i, j int) bool, swap func(i, j int)) {
	n := hi - lo
	siftDown := func(root, size int) {
		for {
			child := 2*root + 1
			if child >= size {
				return
			}
			if child+1 < size && less(lo+child, lo+child+1) {
				child++
			}
			if !less(lo+root, lo+child) {
				return
			}
			swap(lo+root, lo+child)
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	for i := n - 1; i > 0; i-- {
		swap(lo, lo+i)
		siftDown(0, i)
	}
}

func mergeRange(rows []Row, keyVals [][]object.Value, lo, mid, hi int, keys []SortKey) {
	tmpRows := make([]Row, hi-lo)
	tmpKeys := make([][]object.Value, hi-lo)
	copy(tmpRows, rows[lo:hi])
	copy(tmpKeys, keyVals[lo:hi])
	i, j, k := 0, mid-lo, lo
	for i < mid-lo && j < hi-lo {
		if valLess(keys, tmpKeys[j], tmpKeys[i]) {
			rows[k], keyVals[k] = tmpRows[j], tmpKeys[j]
			j++
		} else {
			rows[k], keyVals[k] = tmpRows[i], tmpKeys[i]
			i++
		}
		k++
	}
	for i < mid-lo {
		rows[k], keyVals[k] = tmpRows[i], tmpKeys[i]
		i++
		k++
	}
	for j < hi-lo {
		rows[k], keyVals[k] = tmpRows[j], tmpKeys[j]
		j++
		k++
	}
}

// DupElim eliminates duplicates per Table 3:
//
//	Set    — not applicable (sets are duplicate-free by construction);
//	List   — list of ordered distinct object identifiers;
//	Extent — extent of distinct objects by the deep equality check.
func (a *Algebra) DupElim(arg *Collection) (*Collection, error) {
	switch arg.Kind {
	case SetKind:
		return nil, fmt.Errorf("%w: DupElim on a Set", ErrNotApplicable)
	case ListKind:
		out := &Collection{Kind: ListKind, Name: arg.Name, Class: arg.Class}
		oids := arg.OIDs()
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
		var prev storage.OID
		for i, oid := range oids {
			if i > 0 && oid == prev {
				continue
			}
			prev = oid
			out.Rows = append(out.Rows, Row{Vars: map[string]Bound{arg.Name: {OID: oid}}})
		}
		return out, nil
	case ExtentKind, NamedObjKind:
		out := &Collection{Kind: arg.Kind, Name: arg.Name, Class: arg.Class}
		resolve := a.Cat.Resolver()
		var kept []object.Value
		for i := range arg.Rows {
			row := arg.Rows[i]
			b := row.Vars[arg.Name]
			if err := a.materialize(&b); err != nil {
				return nil, err
			}
			row.Vars[arg.Name] = b
			dup := false
			for _, k := range kept {
				eq, err := object.DeepEqual(k, b.Val, resolve)
				if err != nil {
					return nil, err
				}
				if eq {
					dup = true
					break
				}
			}
			if !dup {
				kept = append(kept, b.Val)
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: DupElim on %s", ErrNotApplicable, arg.Kind)
}
