package cluster

import (
	"sync"
	"testing"

	"mood/internal/storage"
)

func oid(file storage.FileID, page storage.PageID, slot int) storage.OID {
	return storage.MakeOID(file, page, storage.SlotID(slot))
}

func TestTracerHeatAndPlanOrder(t *testing.T) {
	tr := New(1)
	tr.Enable(true)

	// Traversal A->B->C repeated 3x, plus one D->E: the plan must chain
	// A,B,C first (hottest seed, then strongest edges) and D,E after.
	a, b, c := oid(1, 1, 0), oid(1, 7, 3), oid(1, 3, 1)
	d, e := oid(1, 9, 0), oid(1, 2, 2)
	for i := 0; i < 3; i++ {
		tr.ObserveAccess([]storage.OID{a, b, c})
	}
	tr.ObserveAccess([]storage.OID{d, e})

	if got := tr.Traced(); got != 5 {
		t.Fatalf("Traced = %d, want 5", got)
	}
	plans := tr.Plan(1)
	if len(plans) != 1 {
		t.Fatalf("Plan returned %d placements, want 1", len(plans))
	}
	p := plans[0]
	if p.File != 1 || p.Shard != 0 {
		t.Fatalf("placement targets file %d shard %d", p.File, p.Shard)
	}
	// After the hot chain, d and e tie on heat; e has the smaller OID so it
	// seeds and pulls d in through their edge.
	want := []storage.OID{a, b, c, e, d}
	if len(p.Order) != len(want) {
		t.Fatalf("Order has %d entries, want %d", len(p.Order), len(want))
	}
	for i, o := range want {
		if p.Order[i] != o {
			t.Fatalf("Order[%d] = %s, want %s", i, p.Order[i], o)
		}
	}

	// minObjects filters small parts.
	if got := tr.Plan(6); got != nil {
		t.Fatalf("Plan(6) = %v, want nil", got)
	}

	tr.Reset()
	if tr.Traced() != 0 || tr.Plan(1) != nil {
		t.Fatalf("Reset left trace state behind")
	}
}

func TestTracerPartitionsByPartAndShard(t *testing.T) {
	tr := New(1)
	tr.Enable(true)
	s1 := oid(2, 1, 0) | storage.ShardTag(1)
	s1b := oid(2, 5, 0) | storage.ShardTag(1)
	s2 := oid(2, 1, 0) | storage.ShardTag(2)
	f3 := oid(3, 1, 0)
	// Cross-file and cross-shard adjacency must not create edges.
	tr.ObserveAccess([]storage.OID{s1, s2, f3, s1b, s1})
	plans := tr.Plan(1)
	if len(plans) != 3 {
		t.Fatalf("Plan returned %d placements, want 3 (file2/shard1, file2/shard2, file3/shard0)", len(plans))
	}
	for _, p := range plans {
		for _, o := range p.Order {
			if o.File() != p.File || o.Shard() != p.Shard {
				t.Fatalf("placement (file %d, shard %d) contains %s", p.File, p.Shard, o)
			}
		}
	}
	// shard1's two objects have no recorded edge (s2 and f3 intervened),
	// so order is heat-then-OID: s1 (heat 2) before s1b (heat 1).
	if p := plans[1]; p.Shard != 1 || p.Order[0] != s1 {
		t.Fatalf("shard-1 placement = %+v", p)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := New(4)
	tr.Enable(true)
	a, b := oid(1, 1, 0), oid(1, 2, 0)
	for i := 0; i < 16; i++ {
		tr.ObserveAccess([]storage.OID{a, b})
	}
	// Every 4th call records: 4 of 16.
	plans := tr.Plan(1)
	if len(plans) != 1 {
		t.Fatalf("sampled tracer recorded nothing")
	}
	for i := 0; i < 16; i++ {
		tr.ObserveBatch(0, 1, 10, 2)
	}
	if got := tr.BatchRefs(); got != 160 {
		t.Fatalf("BatchRefs = %d, want 160 (exact despite sampling)", got)
	}
	if got := tr.BatchPages(); got != 32 {
		t.Fatalf("BatchPages = %d, want 32", got)
	}
	fs := tr.FileStats()
	if len(fs) != 1 {
		t.Fatalf("FileStats = %v", fs)
	}
	// The per-file registry IS sampled: 4 of 16 observations.
	if fs[0].Refs != 40 || fs[0].Pages != 8 {
		t.Fatalf("sampled file stats = %+v, want refs=40 pages=8", fs[0])
	}
}

func TestTracerDisabledZeroAllocs(t *testing.T) {
	tr := New(8)
	batch := []storage.OID{oid(1, 1, 0), oid(1, 2, 1), oid(1, 3, 2)}
	if n := testing.AllocsPerRun(200, func() {
		tr.ObserveAccess(batch)
		tr.ObserveBatch(0, 1, 3, 2)
	}); n != 0 {
		t.Fatalf("disabled tracer allocates %.1f allocs/op, want 0", n)
	}

	// Enabled but sample-skipped calls must not allocate either (the hook
	// sits on every batched fetch).
	tr.Enable(true)
	tr.ObserveAccess(batch) // consume the recording sample slots
	tr.ObserveBatch(0, 1, 3, 2)
	// With sampleEvery=8 and 2 counter bumps per run, avoid landing on a
	// recording tick during the measured runs by pre-positioning: AllocsPerRun
	// averages over 200 runs, and 200*2/8 = 50 recorded ObserveAccess calls
	// hit existing map keys — steady-state map writes don't allocate.
	if n := testing.AllocsPerRun(200, func() {
		tr.ObserveAccess(batch)
		tr.ObserveBatch(0, 1, 3, 2)
	}); n > 0.1 {
		t.Fatalf("enabled sampled tracer allocates %.2f allocs/op in steady state", n)
	}
}

func TestTracerConcurrentSafety(t *testing.T) {
	tr := New(2)
	tr.Enable(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := []storage.OID{
				oid(storage.FileID(1+g%2), 1, 0),
				oid(storage.FileID(1+g%2), 2, 1),
			}
			for i := 0; i < 500; i++ {
				tr.ObserveAccess(batch)
				tr.ObserveBatch(g%2, storage.FileID(1+g%2), 2, 1)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.BatchRefs(); got != 8*500*2 {
		t.Fatalf("BatchRefs = %d, want %d", got, 8*500*2)
	}
	if plans := tr.Plan(1); len(plans) != 2 {
		t.Fatalf("Plan found %d parts, want 2", len(plans))
	}
}

func BenchmarkObserveBatchEnabled(b *testing.B) {
	tr := New(64)
	tr.Enable(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ObserveBatch(0, 1, 16, 3)
	}
}

func BenchmarkObserveBatchDisabled(b *testing.B) {
	tr := New(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ObserveBatch(0, 1, 16, 3)
	}
}

func BenchmarkObserveAccessSampled(b *testing.B) {
	tr := New(64)
	tr.Enable(true)
	batch := make([]storage.OID, 32)
	for i := range batch {
		batch[i] = oid(1, storage.PageID(i/4+1), i%4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ObserveAccess(batch)
	}
}
