// Package lock implements the concurrency-control substrate: a strict
// two-phase lock manager with shared/exclusive/intention modes over a
// file-and-object hierarchy, lock upgrades, and waits-for deadlock
// detection. ESM supplies this service to MOOD ("controlling data access
// and concurrency"); the Function Manager additionally uses it to lock a
// class's shared object while a member function is being rewritten.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes. IS/IX/SIX are intention modes taken on files when locking
// individual objects within them.
const (
	ModeNone Mode = iota
	ModeIS
	ModeIX
	ModeS
	ModeSIX
	ModeX
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "NONE"
	case ModeIS:
		return "IS"
	case ModeIX:
		return "IX"
	case ModeS:
		return "S"
	case ModeSIX:
		return "SIX"
	case ModeX:
		return "X"
	}
	return "?"
}

// compatible is the classic multigranularity compatibility matrix.
var compatible = [6][6]bool{
	ModeNone: {true, true, true, true, true, true},
	ModeIS:   {true, true, true, true, true, false},
	ModeIX:   {true, true, true, false, false, false},
	ModeS:    {true, true, false, true, false, false},
	ModeSIX:  {true, true, false, false, false, false},
	ModeX:    {true, false, false, false, false, false},
}

// Compatible reports whether a requested mode can coexist with a held mode.
func Compatible(held, requested Mode) bool { return compatible[held][requested] }

// supremum[a][b] is the weakest mode at least as strong as both a and b,
// used for upgrades.
var supremum = [6][6]Mode{
	ModeNone: {ModeNone, ModeIS, ModeIX, ModeS, ModeSIX, ModeX},
	ModeIS:   {ModeIS, ModeIS, ModeIX, ModeS, ModeSIX, ModeX},
	ModeIX:   {ModeIX, ModeIX, ModeIX, ModeSIX, ModeSIX, ModeX},
	ModeS:    {ModeS, ModeS, ModeSIX, ModeS, ModeSIX, ModeX},
	ModeSIX:  {ModeSIX, ModeSIX, ModeSIX, ModeSIX, ModeSIX, ModeX},
	ModeX:    {ModeX, ModeX, ModeX, ModeX, ModeX, ModeX},
}

// Resource names a lockable entity. Use ObjectResource/FileResource to build
// them consistently.
type Resource string

// ObjectResource names an object by its OID string.
func ObjectResource(oid fmt.Stringer) Resource { return Resource("obj:" + oid.String()) }

// FileResource names a storage file (a class extent or index).
func FileResource(name string) Resource { return Resource("file:" + name) }

// ClassSharedObject names a class's shared-object file, locked by the
// Function Manager while member functions are rewritten (Section 2 of the
// paper: "The shared library of the class will be unavailable only during
// the time it takes to write the new function. We provide locking for this
// operation.").
func ClassSharedObject(class string) Resource { return Resource("so:" + class) }

// Errors returned by Acquire.
var (
	ErrDeadlock = errors.New("lock: deadlock detected")
	ErrTimeout  = errors.New("lock: acquisition timed out")
)

// TxID identifies a transaction to the lock manager (shared with the WAL's
// transaction IDs by the kernel).
type TxID uint32

type request struct {
	tx   TxID
	mode Mode
	// granted requests precede waiting ones in the queue.
	granted bool
	cond    *sync.Cond
}

type lockQueue struct {
	queue []*request
}

// Manager is the lock manager.
type Manager struct {
	mu      sync.Mutex
	locks   map[Resource]*lockQueue
	held    map[TxID]map[Resource]Mode
	waits   map[TxID]TxID // waiter -> one blocking holder (for cycle checks)
	timeout time.Duration

	acquisitions int64
	waitsCount   int64
	deadlocks    int64
}

// NewManager creates a lock manager. timeout bounds each acquisition; zero
// means wait indefinitely (deadlocks are still detected and broken).
func NewManager(timeout time.Duration) *Manager {
	return &Manager{
		locks:   make(map[Resource]*lockQueue),
		held:    make(map[TxID]map[Resource]Mode),
		waits:   make(map[TxID]TxID),
		timeout: timeout,
	}
}

// Acquire obtains the resource in the requested mode for tx, blocking until
// compatible. Re-acquisition upgrades the held mode to the supremum of held
// and requested. Returns ErrDeadlock if granting would create a waits-for
// cycle (the requester is chosen as victim), or ErrTimeout.
func (m *Manager) Acquire(tx TxID, res Resource, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acquisitions++

	lq := m.locks[res]
	if lq == nil {
		lq = &lockQueue{}
		m.locks[res] = lq
	}

	// Upgrade path: find our existing granted request.
	var mine *request
	for _, r := range lq.queue {
		if r.tx == tx && r.granted {
			mine = r
			break
		}
	}
	want := mode
	if mine != nil {
		want = supremum[mine.mode][mode]
		if want == mine.mode {
			return nil // already strong enough
		}
	}

	isUpgrade := mine != nil
	req := mine
	if req == nil {
		req = &request{tx: tx, mode: want, cond: sync.NewCond(&m.mu)}
		lq.queue = append(lq.queue, req)
	}

	deadline := time.Time{}
	var stopTimer chan struct{}
	if m.timeout > 0 {
		deadline = time.Now().Add(m.timeout)
		// One timer goroutine per acquisition (not per wakeup): it pokes
		// the condition variable at the deadline so the waiter can notice
		// the timeout.
		stopTimer = make(chan struct{})
		timer := time.NewTimer(m.timeout)
		go func() {
			defer timer.Stop()
			select {
			case <-timer.C:
				m.mu.Lock()
				req.cond.Broadcast()
				m.mu.Unlock()
			case <-stopTimer:
			}
		}()
		defer close(stopTimer)
	}

	for {
		if blocker := m.conflict(lq, req, want); blocker == 0 {
			req.granted = true
			req.mode = want
			delete(m.waits, tx)
			if m.held[tx] == nil {
				m.held[tx] = make(map[Resource]Mode)
			}
			m.held[tx][res] = want
			return nil
		} else {
			m.waits[tx] = blocker
			if m.cycleFrom(tx) {
				m.deadlocks++
				delete(m.waits, tx)
				m.removeRequest(lq, req, res)
				return fmt.Errorf("%w: tx %d on %s", ErrDeadlock, tx, res)
			}
		}
		m.waitsCount++
		req.cond.Wait()
		if !deadline.IsZero() && time.Now().After(deadline) {
			delete(m.waits, tx)
			if isUpgrade {
				// The upgrade failed but the original grant stands.
				return fmt.Errorf("%w: tx %d upgrading %s", ErrTimeout, tx, res)
			}
			m.removeRequest(lq, req, res)
			return fmt.Errorf("%w: tx %d on %s", ErrTimeout, tx, res)
		}
	}
}

// conflict returns 0 if req can be granted in mode want, else the TxID of
// one conflicting holder/waiter. Caller holds m.mu.
func (m *Manager) conflict(lq *lockQueue, req *request, want Mode) TxID {
	for _, r := range lq.queue {
		if r == req {
			if req.granted {
				continue // upgrade: only granted peers matter, checked below
			}
			// FIFO fairness: a new request waits behind earlier waiters.
			break
		}
		if r.tx == req.tx {
			continue
		}
		if r.granted {
			if !Compatible(r.mode, want) {
				return r.tx
			}
		} else if !req.granted {
			// Earlier waiter: queue behind it to avoid starvation, unless
			// compatible with it too (then both could be granted together).
			if !Compatible(r.mode, want) {
				return r.tx
			}
		}
	}
	if req.granted {
		// Upgrade: every other granted holder must be compatible.
		for _, r := range lq.queue {
			if r != req && r.granted && !Compatible(r.mode, want) {
				return r.tx
			}
		}
	}
	return 0
}

// cycleFrom reports whether following waits-for edges from tx returns to tx.
// Caller holds m.mu.
func (m *Manager) cycleFrom(tx TxID) bool {
	seen := map[TxID]bool{}
	cur := tx
	for {
		next, ok := m.waits[cur]
		if !ok {
			return false
		}
		if next == tx {
			return true
		}
		if seen[next] {
			return false
		}
		seen[next] = true
		cur = next
	}
}

func (m *Manager) removeRequest(lq *lockQueue, req *request, res Resource) {
	for i, r := range lq.queue {
		if r == req {
			lq.queue = append(lq.queue[:i], lq.queue[i+1:]...)
			break
		}
	}
	for _, r := range lq.queue {
		r.cond.Broadcast()
	}
	if len(lq.queue) == 0 {
		delete(m.locks, res)
	}
}

// Release drops tx's lock on the resource (rarely used directly: strict 2PL
// releases everything at commit via ReleaseAll).
func (m *Manager) Release(tx TxID, res Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(tx, res)
}

func (m *Manager) releaseLocked(tx TxID, res Resource) {
	lq := m.locks[res]
	if lq == nil {
		return
	}
	for i, r := range lq.queue {
		if r.tx == tx && r.granted {
			lq.queue = append(lq.queue[:i], lq.queue[i+1:]...)
			break
		}
	}
	if held := m.held[tx]; held != nil {
		delete(held, res)
		if len(held) == 0 {
			delete(m.held, tx)
		}
	}
	for _, r := range lq.queue {
		r.cond.Broadcast()
	}
	if len(lq.queue) == 0 {
		delete(m.locks, res)
	}
}

// ReleaseAll drops every lock held by tx (commit/abort time).
func (m *Manager) ReleaseAll(tx TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	held := m.held[tx]
	resources := make([]Resource, 0, len(held))
	for res := range held {
		resources = append(resources, res)
	}
	for _, res := range resources {
		m.releaseLocked(tx, res)
	}
	delete(m.waits, tx)
}

// HeldMode returns the mode tx holds on the resource (ModeNone if none).
func (m *Manager) HeldMode(tx TxID, res Resource) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if held := m.held[tx]; held != nil {
		return held[res]
	}
	return ModeNone
}

// Stats returns (acquisitions, waits, deadlocks).
func (m *Manager) Stats() (acquisitions, waits, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquisitions, m.waitsCount, m.deadlocks
}
