package exec

import (
	"fmt"
	"strings"
	"time"

	"mood/internal/algebra"
	"mood/internal/optimizer"
)

// EXPLAIN ANALYZE instrumentation: every operator is wrapped with a stats
// shim that accumulates, per Open/Next/Close call, the simulated page reads
// and wall time spent inside it — children included, since their calls nest
// within the parent's. The per-operator ("self") figures fall out at report
// time as a node's cumulative total minus its direct children's. The
// wrappers exist only on the analyzed pipeline; plain Execute pays no
// per-row instrumentation cost.

// opStats accumulates one operator's cumulative counters.
type opStats struct {
	rowsOut int64
	pages   int64
	elapsed time.Duration
}

// analyzeCtx supplies the page-counter source to every stats wrapper of one
// analyzed execution.
type analyzeCtx struct {
	pages func() int64
}

// statsOp wraps an operator, charging pages and wall time spent inside its
// calls (nested child calls included) to st.
type statsOp struct {
	inner optimizer.Operator
	pages func() int64
	st    *opStats
}

func (s *statsOp) Open() error {
	start, p0 := time.Now(), s.pages()
	err := s.inner.Open()
	s.st.pages += s.pages() - p0
	s.st.elapsed += time.Since(start)
	return err
}

func (s *statsOp) Next() (algebra.Row, bool, error) {
	start, p0 := time.Now(), s.pages()
	row, ok, err := s.inner.Next()
	s.st.pages += s.pages() - p0
	s.st.elapsed += time.Since(start)
	if ok {
		s.st.rowsOut++
	}
	return row, ok, err
}

func (s *statsOp) Close() error {
	start, p0 := time.Now(), s.pages()
	err := s.inner.Close()
	s.st.pages += s.pages() - p0
	s.st.elapsed += time.Since(start)
	return err
}

// OpReport is one node of the EXPLAIN ANALYZE tree.
type OpReport struct {
	Plan    optimizer.Plan
	RowsIn  int64 // sum of the direct children's rows out
	RowsOut int64
	// SelfPages/SelfTime exclude the children's cumulative shares;
	// CumPages/CumTime include them.
	SelfPages int64
	CumPages  int64
	SelfTime  time.Duration
	CumTime   time.Duration
	// Workers holds per-worker rows/pages for parallel (exchange) operators;
	// nil for serial nodes. Pages counts the fetches a worker issued, buffer
	// hits included, so the sum can exceed the node's simulated read delta.
	Workers []WorkerStat
	Kids    []*OpReport
}

// Analysis is the instrumented execution report of one EXPLAIN ANALYZE.
type Analysis struct {
	Root *OpReport
	// TotalPages is the root's cumulative simulated page reads; it matches
	// the DiskSim read-counter delta across the execution.
	TotalPages int64
	TotalTime  time.Duration
}

// ExecuteAnalyzed runs a plan through the streaming pipeline with
// per-operator instrumentation, returning both the result collection and
// the analysis tree. Page attribution requires the Executor's Pages hook;
// without it page counts report as zero.
func (e *Executor) ExecuteAnalyzed(p optimizer.Plan) (*algebra.Collection, *Analysis, error) {
	an := &analyzeCtx{pages: e.Pages}
	if an.pages == nil {
		an.pages = func() int64 { return 0 }
	}
	root, err := e.compileNode(p, an)
	if err != nil {
		return nil, nil, err
	}
	coll, err := drainOp(root.op, root.hdr)
	if err != nil {
		return nil, nil, err
	}
	rep := buildReport(root)
	return coll, &Analysis{Root: rep, TotalPages: rep.CumPages, TotalTime: rep.CumTime}, nil
}

func buildReport(c *compiled) *OpReport {
	r := &OpReport{
		Plan:     c.plan,
		RowsOut:  c.stats.rowsOut,
		CumPages: c.stats.pages,
		CumTime:  c.stats.elapsed,
	}
	if ws, ok := c.raw.(workerStatser); ok {
		r.Workers = ws.WorkerStats()
	}
	var kidPages int64
	var kidTime time.Duration
	for _, k := range c.kids {
		kr := buildReport(k)
		r.Kids = append(r.Kids, kr)
		r.RowsIn += kr.RowsOut
		kidPages += kr.CumPages
		kidTime += kr.CumTime
	}
	r.SelfPages = r.CumPages - kidPages
	if r.SelfPages < 0 {
		r.SelfPages = 0
	}
	r.SelfTime = r.CumTime - kidTime
	if r.SelfTime < 0 {
		r.SelfTime = 0
	}
	return r
}

// Render formats the analysis as the plan tree annotated with per-operator
// rows, simulated page reads, and wall time.
func (a *Analysis) Render() string {
	var sb strings.Builder
	renderReport(&sb, a.Root, "")
	fmt.Fprintf(&sb, "total: pages=%d time=%s\n", a.TotalPages, fmtDur(a.TotalTime))
	return sb.String()
}

func renderReport(sb *strings.Builder, r *OpReport, indent string) {
	if len(r.Kids) == 0 {
		fmt.Fprintf(sb, "%s%s  (rows=%d pages=%d time=%s)\n",
			indent, optimizer.Describe(r.Plan), r.RowsOut, r.SelfPages, fmtDur(r.SelfTime))
	} else {
		fmt.Fprintf(sb, "%s%s  (rows in=%d out=%d pages=%d time=%s)\n",
			indent, optimizer.Describe(r.Plan), r.RowsIn, r.RowsOut, r.SelfPages, fmtDur(r.SelfTime))
	}
	for i, w := range r.Workers {
		fmt.Fprintf(sb, "%s  [worker %d] rows=%d pages=%d\n", indent, i, w.Rows, w.Pages)
	}
	for _, k := range r.Kids {
		renderReport(sb, k, indent+"  ")
	}
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
