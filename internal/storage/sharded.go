package storage

import "fmt"

// ShardedStore partitions class extents across N independent ObjectStores.
// Each shard is a complete storage stack — its own simulated disk, buffer
// pool, file manager and (wired by the kernel) write-ahead log — so shards
// share no locks and no fsync stream: writers on different shards commit
// concurrently, which is where the multi-shard commit throughput comes from.
//
// Routing is a pure function of the OID: shard i mints OIDs tagged with i in
// the identifier's shard field, and every read (Get, Update, Delete,
// FetchBatch) goes straight back to shards[oid.Shard()]. Inserts rotate
// round-robin over the parts of the target extent, keeping part cardinality
// balanced to within one record.
//
// Extents created through the sharded store have one part per shard, all
// with the same directory name. System tables (the catalog's SYS.* extents)
// shard the same way as class extents; index pages live on shard 0 (Pool).
type ShardedStore struct {
	shards []*ObjectStore
}

// NewShardedStore builds a sharded store over per-shard ObjectStores. Every
// inner store must have been constructed with NewShardObjectStore and its
// own position as the shard id — minted OIDs must route back to the shard
// that owns the record.
func NewShardedStore(shards []*ObjectStore) *ShardedStore {
	if len(shards) == 0 || len(shards) > MaxShards {
		panic(fmt.Sprintf("storage: shard count %d out of range [1,%d]", len(shards), MaxShards))
	}
	for i, s := range shards {
		if s.shard != i {
			panic(fmt.Sprintf("storage: store at position %d is tagged for shard %d", i, s.shard))
		}
	}
	return &ShardedStore{shards: shards}
}

// Shard returns the shard-i ObjectStore (the kernel wires per-shard
// prefetchers through this).
func (s *ShardedStore) Shard(i int) *ObjectStore { return s.shards[i] }

// Shards returns the number of independent stores.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// Pool returns shard 0's buffer pool: the home of index structures and the
// catalog's system directory root.
func (s *ShardedStore) Pool() *BufferPool { return s.shards[0].Pool() }

// Files returns shard 0's file manager.
func (s *ShardedStore) Files() *FileManager { return s.shards[0].Files() }

// CreateExtent creates one same-named heap file per shard.
func (s *ShardedStore) CreateExtent(name string) (*Extent, error) {
	parts := make([]*File, len(s.shards))
	for i, st := range s.shards {
		f, err := st.Files().CreateFile(name)
		if err != nil {
			return nil, err
		}
		parts[i] = f
	}
	return &Extent{Name: name, parts: parts}, nil
}

// OpenExtent opens the named extent from every shard's directory.
func (s *ShardedStore) OpenExtent(name string) (*Extent, error) {
	parts := make([]*File, len(s.shards))
	for i, st := range s.shards {
		f, err := st.Files().OpenFile(name)
		if err != nil {
			return nil, err
		}
		parts[i] = f
	}
	return &Extent{Name: name, parts: parts}, nil
}

// DropExtent removes the extent's file in every shard.
func (s *ShardedStore) DropExtent(name string) error {
	for _, st := range s.shards {
		if err := st.Files().DropFile(name); err != nil {
			return err
		}
	}
	return nil
}

// InsertExtent routes the insert to the extent's next round-robin part.
func (s *ShardedStore) InsertExtent(e *Extent, data []byte) (OID, error) {
	part := e.nextPart()
	return s.shards[part].Insert(e.parts[part], data)
}

// Get routes the read to the shard that minted the OID.
func (s *ShardedStore) Get(oid OID) ([]byte, error) {
	return s.shards[oid.Shard()].Get(oid)
}

// Update routes the write to the shard that owns the record.
func (s *ShardedStore) Update(oid OID, data []byte) error {
	return s.shards[oid.Shard()].Update(oid, data)
}

// Delete routes the delete to the shard that owns the record.
func (s *ShardedStore) Delete(oid OID) error {
	return s.shards[oid.Shard()].Delete(oid)
}

// FetchBatch partitions the batch by shard, delegates each sub-batch to its
// owning store (which sorts, prefetches and pins per distinct page), and
// scatters the results back into input order.
func (s *ShardedStore) FetchBatch(oids []OID) ([][]byte, error) {
	if len(s.shards) == 1 {
		return s.shards[0].FetchBatch(oids)
	}
	byShard := make([][]OID, len(s.shards))
	idx := make([][]int, len(s.shards))
	for i, oid := range oids {
		sh := oid.Shard()
		byShard[sh] = append(byShard[sh], oid)
		idx[sh] = append(idx[sh], i)
	}
	out := make([][]byte, len(oids))
	for sh, sub := range byShard {
		if len(sub) == 0 {
			continue
		}
		got, err := s.shards[sh].FetchBatch(sub)
		if err != nil {
			return nil, err
		}
		for j, data := range got {
			out[idx[sh][j]] = data
		}
	}
	return out, nil
}

// ScanExtent iterates the extent part by part (shard order), each part in
// page-chain order. The order is deterministic but differs from insert
// order when records rotated across shards.
func (s *ShardedStore) ScanExtent(e *Extent, fn func(OID, []byte) bool) error {
	stop := false
	for part, st := range s.shards {
		if err := st.Scan(e.parts[part], func(oid OID, data []byte) bool {
			if !fn(oid, data) {
				stop = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// PartFirstPage returns the first data page of one shard's part.
func (s *ShardedStore) PartFirstPage(e *Extent, part int) PageID {
	return s.shards[part].FirstScanPage(e.parts[part])
}

// PartPageList returns one shard's part pages in chain order.
func (s *ShardedStore) PartPageList(e *Extent, part int) ([]PageID, error) {
	return s.shards[part].PageList(e.parts[part])
}

// ScanPartRecs reads one page of one shard's part, batch-delivering its
// records.
func (s *ShardedStore) ScanPartRecs(e *Extent, part int, pid PageID, readahead bool, scratch []ScanRecord, fn func(recs []ScanRecord) error) (PageID, []ScanRecord, error) {
	return s.shards[part].ScanPageRecs(e.parts[part], pid, readahead, scratch, fn)
}

// PrefetchPart requests background loads of one shard's pages.
func (s *ShardedStore) PrefetchPart(part int, ids ...PageID) {
	s.shards[part].Prefetch(ids...)
}

// SetInvalidator installs the cache-invalidation hook on every shard. OIDs
// carry their shard tag, so one shared cache keyed by OID never aliases
// records of different shards.
func (s *ShardedStore) SetInvalidator(inv CacheInvalidator) {
	for _, st := range s.shards {
		st.SetInvalidator(inv)
	}
}

// SetBatchObserver installs the clustering observation hook on every shard;
// each shard reports under its own id, so the tracer's stripes never
// contend across shards.
func (s *ShardedStore) SetBatchObserver(obs BatchObserver) {
	for _, st := range s.shards {
		st.SetBatchObserver(obs)
	}
}

// MigrateRecords delegates the migration to the store owning the part; part
// and shard coincide by construction, and the inner store re-validates that
// every OID routes there.
func (s *ShardedStore) MigrateRecords(e *Extent, part int, oids []OID, logPage PageLogger, cont bool) (int, error) {
	if part < 0 || part >= len(s.shards) {
		return 0, fmt.Errorf("storage: migrate: part %d out of range [0,%d)", part, len(s.shards))
	}
	return s.shards[part].MigrateRecords(e, part, oids, logPage, cont)
}

// CompactExtent compacts every shard's part of the extent.
func (s *ShardedStore) CompactExtent(e *Extent) (int, error) {
	freed := 0
	for i, st := range s.shards {
		n, err := st.compactFile(e.parts[i])
		freed += n
		if err != nil {
			return freed, err
		}
	}
	return freed, nil
}

// ReadCount sums the simulated page reads across every shard's disk.
func (s *ShardedStore) ReadCount() int64 {
	var n int64
	for _, st := range s.shards {
		n += st.ReadCount()
	}
	return n
}

// ShardReads returns the per-shard cumulative read counters.
func (s *ShardedStore) ShardReads() []int64 {
	out := make([]int64, len(s.shards))
	for i, st := range s.shards {
		out[i] = st.ReadCount()
	}
	return out
}

var (
	_ Store = (*ObjectStore)(nil)
	_ Store = (*ShardedStore)(nil)
)
