package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// smallEnv builds a fast environment shared by the smoke tests.
func smallEnv(t *testing.T) *Env {
	t.Helper()
	env, err := BuildEnv(0.02) // 400 vehicles, 4000 companies
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestDefinitionalTables(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	if err := Table1(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Extent", "Set", "List", "NamedObj"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := Table2(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Named Obj.") {
		t.Errorf("Table 2:\n%s", buf.String())
	}
	buf.Reset()
	Tables3to7(&buf)
	if !strings.Contains(buf.String(), "deep equality") {
		t.Error("Tables 3-7 content missing")
	}
}

func TestParameterTables(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	Table8(&buf, env)
	if !strings.Contains(buf.String(), "Vehicle.drivetrain") {
		t.Errorf("Table 8:\n%s", buf.String())
	}
	buf.Reset()
	if err := Table9(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "leaves(I)") {
		t.Errorf("Table 9:\n%s", buf.String())
	}
	buf.Reset()
	Table10(&buf, env)
	if !strings.Contains(buf.String(), "block transfer time") {
		t.Errorf("Table 10:\n%s", buf.String())
	}
	buf.Reset()
	Tables13to15(&buf, env)
	out := buf.String()
	for _, want := range []string{"Table 13", "Table 14", "Table 15", "hitprb"} {
		if !strings.Contains(out, want) {
			t.Errorf("Tables 13-15 missing %q", want)
		}
	}
}

func TestExampleTables(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	if err := Table16(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REPRODUCED: selectivities=true ordering=true") {
		t.Errorf("Table 16 did not reproduce the paper's values:\n%s", buf.String())
	}
	buf.Reset()
	if err := Table17(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HASH_PARTITION") {
		t.Errorf("Table 17:\n%s", buf.String())
	}
	buf.Reset()
	if err := Example81Plan(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "FORWARD_TRAVERSAL") < 3 { // 2 generated + paper text
		t.Errorf("Example 8.1 plan:\n%s", out)
	}
	buf.Reset()
	if err := Example82Plan(&buf, env); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "HASH_PARTITION") < 3 { // 2 generated + paper text
		t.Errorf("Example 8.2 plan:\n%s", buf.String())
	}
	buf.Reset()
	if err := Tables11and12(&buf, env); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "Table 11") || !strings.Contains(out, "Table 12") {
		t.Errorf("dictionaries:\n%s", out)
	}
}

func TestFigures(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	if err := Figure71(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GROUP(") {
		t.Errorf("Figure 7.1:\n%s", buf.String())
	}
	buf.Reset()
	if err := Figure72(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UNION(") {
		t.Errorf("Figure 7.2:\n%s", buf.String())
	}
}

func TestJoinMethodSweepShape(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	if err := JoinMethodSweep(&buf, env); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	// The paper's shape: forward wins at the smallest k_c; a scan-based
	// method wins at full extent.
	lines := strings.Split(out, "\n")
	var winners []string
	for _, l := range lines {
		if strings.Contains(l, "predicted winner") {
			winners = append(winners, l)
		}
	}
	if len(winners) < 5 {
		t.Fatalf("sweep rows missing:\n%s", out)
	}
	if !strings.Contains(winners[0], "measured winner forward") {
		t.Errorf("small k_c measured winner not forward: %s", winners[0])
	}
	if strings.Contains(winners[len(winners)-1], "measured winner forward") {
		t.Errorf("full-extent measured winner still forward: %s", winners[len(winners)-1])
	}
}

func TestPathOrderingSweepGain(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	if err := PathOrderingSweep(&buf, env); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "speedup:") {
		t.Fatalf("no speedup line:\n%s", out)
	}
	// The chosen order must not be slower.
	var chosen, reverse float64
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "P2-first") {
			fmtSscanfFloat(l, &chosen)
		}
		if strings.Contains(l, "P1-first") {
			fmtSscanfFloat(l, &reverse)
		}
	}
	if chosen <= 0 || reverse <= 0 {
		t.Fatalf("could not parse timings:\n%s", out)
	}
	if chosen > reverse {
		t.Errorf("Algorithm 8.1 order slower: %v > %v\n%s", chosen, reverse, out)
	}
}

// fmtSscanfFloat pulls the first parseable float out of a line like
// "P2-first (...):   123.4 ms ...".
func fmtSscanfFloat(line string, out *float64) {
	for _, tok := range strings.Fields(line) {
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			*out = v
			return
		}
	}
}

func TestSelectivityAccuracy(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	if err := SelectivityAccuracy(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ratio") {
		t.Errorf("accuracy table:\n%s", buf.String())
	}
}

func TestIndexSelectionSweep(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	if err := IndexSelectionSweep(&buf, env); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "index") || !strings.Contains(out, "scan") {
		t.Errorf("index sweep:\n%s", out)
	}
}
