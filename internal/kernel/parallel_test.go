package kernel

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mood/internal/exec"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/vehicledb"
)

// parallelOptions opens every plan at degree-of-parallelism 4 with the
// cost-model page threshold disabled, so even the small test extents
// exchange.
func parallelOptions() Options {
	opts := DefaultOptions()
	opts.Parallelism = 4
	opts.ParallelMinPages = -1
	return opts
}

// TestParallelGoldenSuiteDifferential replays the full MOODSQL golden script
// against two kernels — one serial, one with intra-query parallelism — and
// demands byte-identical rendered results for every SELECT. DDL/DML advance
// both databases identically, so each query pair sees the same state.
func TestParallelGoldenSuiteDifferential(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "basic.moodsql"))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	par, err := Open(parallelOptions())
	if err != nil {
		t.Fatal(err)
	}

	selects, exchanged := 0, 0
	for _, stmt := range splitScript(string(script)) {
		parsed, err := sql.Parse(stmt)
		if err != nil {
			continue
		}
		sel, isSelect := parsed.(*sql.Select)
		if !isSelect {
			serial.ExecuteStmt(parsed)
			par.ExecuteStmt(parsed)
			continue
		}

		splan, err := serial.optimize(sel)
		if err != nil {
			continue
		}
		pplan, err := par.optimize(sel)
		if err != nil {
			t.Fatalf("%s: parallel optimize failed where serial succeeded: %v", stmt, err)
		}
		if strings.Contains(optimizer.Render(pplan), "EXCHANGE(") {
			exchanged++
		}

		sres, err := serial.Exec.Execute(splan)
		if err != nil {
			t.Fatalf("%s: serial execute: %v", stmt, err)
		}
		pres, err := par.Exec.Execute(pplan)
		if err != nil {
			t.Fatalf("%s: parallel execute: %v\nplan:\n%s", stmt, err, optimizer.Render(pplan))
		}
		got, want := renderResult(exec.Extract(pres)), renderResult(exec.Extract(sres))
		if got != want {
			t.Errorf("%s: parallel result diverged:\n--- parallel ---\n%s--- serial ---\n%s", stmt, got, want)
		}
		selects++
	}
	if selects == 0 {
		t.Fatal("golden script produced no successfully planned SELECTs")
	}
	if exchanged == 0 {
		t.Fatal("no golden query planned an EXCHANGE; the parallel kernel path was never exercised")
	}
}

// TestParallelExplainAnalyzePageTotals is the parallel acceptance check on
// EXPLAIN ANALYZE: with exchanges in the plan, the reported page total still
// equals the DiskSim read-counter delta (workers drain inside the
// instrumented Open), and the annotated tree carries per-worker rows/pages.
func TestParallelExplainAnalyzePageTotals(t *testing.T) {
	db, err := Open(parallelOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		t.Fatal(err)
	}
	cfg := vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5,
	}
	if _, err := vehicledb.Populate(db.Cat, cfg); err != nil {
		t.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, query string
	}{
		{"scan-filter", `SELECT v FROM Vehicle v WHERE v.weight > 1200`},
		{"hash-join", `SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base, err := db.Execute(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(optimizer.Render(db.LastPlan), "EXCHANGE(") {
				t.Fatalf("plan has no EXCHANGE node:\n%s", optimizer.Render(db.LastPlan))
			}

			if err := db.Pool.EvictAll(); err != nil {
				t.Fatal(err)
			}
			scope := db.Disk.Scope()
			res, err := db.Execute(`EXPLAIN ANALYZE ` + tc.query)
			if err != nil {
				t.Fatal(err)
			}
			delta := scope.Delta()

			an := db.LastAnalyze
			if an == nil {
				t.Fatal("EXPLAIN ANALYZE did not populate LastAnalyze")
			}
			if an.TotalPages != delta.Reads() {
				t.Errorf("analysis reports %d pages, DiskSim delta is %d", an.TotalPages, delta.Reads())
			}
			if an.TotalPages == 0 {
				t.Error("expected nonzero page reads on a cold buffer pool")
			}
			if an.Root.RowsOut != int64(len(base.Rows)) {
				t.Errorf("root rows out = %d, plain SELECT returned %d rows", an.Root.RowsOut, len(base.Rows))
			}
			out := res.Rows[0][0].Str
			if !strings.Contains(out, "[worker ") {
				t.Errorf("EXPLAIN ANALYZE output lacks per-worker annotations:\n%s", out)
			}
		})
	}
}
