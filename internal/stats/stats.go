// Package stats collects the cost-model parameters of Table 8 from a live
// database: |C|, nbpages(C), size(C), notnull(A,C), fan(A,C,D),
// totref(A,C,D) (totlinks and hitprb derive from these), and dist/max/min
// for atomic attributes. The optimizer reads the result through the cost
// package; the moodbench tool prints it back as the paper's Tables 13–15.
package stats

import (
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/object"
	"mood/internal/storage"
)

// Collect scans every class extent once and assembles the statistics base.
// Attributes are attributed to the class that declares them; inherited
// attributes therefore resolve through the declaring superclass, and
// instances of subclasses contribute to the superclass's statistics (IS-A
// semantics: an Automobile is a Vehicle).
func Collect(cat *catalog.Catalog, disk cost.Disk) (*cost.Stats, error) {
	s := cost.NewStats(disk)

	type attrAgg struct {
		class, attr string
		target      string // reference target class ("" for atomic)
		nonNull     int
		totalRefs   int
		distinctRef map[storage.OID]bool
		distinctVal map[string]bool
		max, min    float64
		haveNum     bool
		rows        int
	}
	aggs := map[string]*attrAgg{}
	aggKey := func(c, a string) string { return c + "." + a }

	for _, cl := range cat.Classes() {
		if !cl.IsClass {
			continue
		}
		// Class-level parameters come from the class's own extent.
		card, err := cat.ExtentCount(cl.Name)
		if err != nil {
			return nil, err
		}
		pages, err := cat.ExtentPages(cl.Name)
		if err != nil {
			return nil, err
		}
		var bytes int
		if err := cat.ScanExtent(cl.Name, func(_ storage.OID, v object.Value) bool {
			bytes += len(object.Marshal(v))
			return true
		}); err != nil {
			return nil, err
		}
		size := 0
		if card > 0 {
			size = bytes / card
		}
		cs := cost.ClassStats{Name: cl.Name, Card: card, NbPages: pages, Size: size}
		// On a sharded store each extent part is a separate file; the
		// per-part split feeds the cost model's per-shard scan and Cardenas
		// estimates.
		if sp, err := cat.ExtentShardPages(cl.Name); err == nil && len(sp) > 1 {
			cs.ShardPages = sp
		}
		s.SetClass(cs)

		// Prepare aggregators for the attributes this class declares.
		for _, f := range cl.Tuple.Fields {
			a := &attrAgg{
				class: cl.Name, attr: f.Name,
				distinctRef: map[storage.OID]bool{},
				distinctVal: map[string]bool{},
			}
			switch f.Type.Kind {
			case object.KindReference:
				a.target = f.Type.Target
			case object.KindSet, object.KindList:
				if f.Type.Elem != nil && f.Type.Elem.Kind == object.KindReference {
					a.target = f.Type.Elem.Target
				}
			}
			aggs[aggKey(cl.Name, f.Name)] = a
		}
	}

	// One pass per class closure: each object contributes to the
	// aggregators of every class on its IS-A chain that declares the
	// attribute.
	for _, cl := range cat.Classes() {
		if !cl.IsClass || len(cl.Tuple.Fields) == 0 {
			continue
		}
		cl := cl
		if err := cat.ScanClosure(cl.Name, nil, func(_ storage.OID, v object.Value) bool {
			for _, f := range cl.Tuple.Fields {
				a := aggs[aggKey(cl.Name, f.Name)]
				a.rows++
				av, ok := v.Field(f.Name)
				if !ok || av.IsNull() {
					continue
				}
				// A nil reference is a null attribute for notnull(A,C).
				if av.Kind == object.KindReference && av.Ref.IsNil() {
					continue
				}
				a.nonNull++
				switch av.Kind {
				case object.KindReference:
					if !av.Ref.IsNil() {
						a.totalRefs++
						a.distinctRef[av.Ref] = true
					}
				case object.KindSet, object.KindList:
					for _, e := range av.Elems {
						if e.Kind == object.KindReference && !e.Ref.IsNil() {
							a.totalRefs++
							a.distinctRef[e.Ref] = true
						}
					}
				default:
					a.distinctVal[av.String()] = true
					if n, ok := av.AsFloat(); ok {
						if !a.haveNum || n > a.max {
							a.max = n
						}
						if !a.haveNum || n < a.min {
							a.min = n
						}
						a.haveNum = true
					}
				}
			}
			return true
		}); err != nil {
			return nil, err
		}
	}

	for _, a := range aggs {
		notNull := 0.0
		if a.rows > 0 {
			notNull = float64(a.nonNull) / float64(a.rows)
		}
		if a.target != "" {
			fan := 0.0
			if a.rows > 0 {
				fan = float64(a.totalRefs) / float64(a.rows)
			}
			targetCard := 0
			if n, err := cat.ExtentCount(a.target); err == nil {
				targetCard = n
			}
			// |D| counts the closure (an attribute typed REFERENCE(D) may
			// reference any subclass instance).
			if closure, err := cat.Closure(a.target); err == nil {
				targetCard = 0
				for _, t := range closure {
					if n, err := cat.ExtentCount(t); err == nil {
						targetCard += n
					}
				}
			}
			s.SetLink(cost.LinkStats{
				Class:      a.class,
				Attribute:  a.attr,
				Target:     a.target,
				Fan:        fan,
				TotRef:     float64(len(a.distinctRef)),
				NotNull:    notNull,
				TargetCard: float64(targetCard),
			})
		} else {
			s.SetAttr(cost.AttrStats{
				Class:     a.class,
				Attribute: a.attr,
				Dist:      len(a.distinctVal),
				Max:       a.max,
				Min:       a.min,
				NotNull:   notNull,
			})
		}
	}
	return s, nil
}

// ClusterObs is one extent part's cumulative batch-fetch observation from
// the clustering tracer: over Runs sampled batch runs, Refs references
// resolved against the part landed on Pages distinct (post-forwarding)
// pages. The kernel converts the tracer's snapshot into this shape so the
// stats package stays decoupled from the tracer's types.
type ClusterObs struct {
	Shard int
	File  storage.FileID
	Runs  uint64
	Refs  uint64
	Pages uint64
}

// minClusterRefs is the evidence floor: below it the measured ratio is too
// noisy to override the Cardenas assumption.
const minClusterRefs = 32

// ApplyClusterFactors learns each class's ClusterFactor — measured distinct
// pages per batched reference fetch, relative to the Cardenas prediction —
// from the tracer's per-part observations, and writes it into the stats
// base. Classes without enough observed traffic keep ClusterFactor zero, so
// their estimates stay byte-exact to the paper's formulas.
func ApplyClusterFactors(s *cost.Stats, cat *catalog.Catalog, obs []ClusterObs) {
	if len(obs) == 0 {
		return
	}
	type partKey struct {
		shard int
		file  storage.FileID
	}
	byPart := make(map[partKey]ClusterObs, len(obs))
	for _, o := range obs {
		byPart[partKey{o.Shard, o.File}] = o
	}
	for _, cl := range cat.Classes() {
		if !cl.IsClass || cl.Extent() == nil {
			continue
		}
		cs, err := s.Class(cl.Name)
		if err != nil {
			continue
		}
		e := cl.Extent()
		pp := e.PartPages()
		var observed, predicted float64
		var refs uint64
		for part := 0; part < e.Parts() && part < len(pp); part++ {
			o, ok := byPart[partKey{part, e.PartFileID(part)}]
			if !ok || o.Runs == 0 || o.Refs == 0 {
				continue
			}
			// The tracer only keeps totals, so the prediction uses the
			// average batch size: Runs batches of Refs/Runs references each.
			observed += float64(o.Pages)
			predicted += float64(o.Runs) * cost.NbPg(pp[part], float64(o.Refs)/float64(o.Runs))
			refs += o.Refs
		}
		if refs < minClusterRefs || predicted <= 0 {
			continue
		}
		cf := observed / predicted
		// Clamp: a factor above 1 means placement is WORSE than uniform
		// (possible mid-reorganization); never let noise blow estimates up
		// past 2x or down below 1/20th.
		if cf > 2 {
			cf = 2
		}
		if cf < 0.05 {
			cf = 0.05
		}
		cs.ClusterFactor = cf
		s.SetClass(cs)
	}
}

// IndexStats extracts Table 9 parameters for every B+-tree index in the
// catalog, keyed "class.attribute".
func IndexStats(cat *catalog.Catalog) map[string]cost.BTreeStats {
	out := map[string]cost.BTreeStats{}
	for _, ix := range cat.Indexes() {
		if tr := ix.BTree(); tr != nil {
			st := tr.Stats()
			out[ix.Class+"."+ix.Attribute] = cost.BTreeStats{
				Order:   st.Order,
				Levels:  st.Levels,
				Leaves:  st.Leaves,
				KeySize: st.KeySize,
				Unique:  st.Unique,
			}
		}
	}
	return out
}
