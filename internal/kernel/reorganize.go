package kernel

import (
	"fmt"
	"time"

	"mood/internal/cluster"
	"mood/internal/storage"
	"mood/internal/wal"
)

// The online reorganizer: takes the clustering tracer's placement plan and
// applies it to the live database in small WAL-logged batches. Each batch is
// one transaction on the owning shard's log — MigrateRecords leaves forward
// stubs behind, so every OID stays valid throughout, and a crash in the
// middle of a batch is rolled back by ordinary ARIES recovery (the crashtest
// package's cluster mode exercises exactly that). After all placements are
// applied, fully-vacated source pages are unlinked and freed, traces reset,
// and the statistics base invalidated so the next plan prices the new
// layout.

// reorgMinObjects is the placement floor: parts with fewer traced objects
// are not worth rewriting.
const reorgMinObjects = 2

// defaultClusterBatch bounds how many records one migration transaction
// moves (and therefore how long the store's exclusive lock is held and how
// large the batch's log footprint grows).
const defaultClusterBatch = 64

// ReorgStats summarizes one Reorganize call.
type ReorgStats struct {
	// Placements is the number of extent parts rewritten.
	Placements int
	// Moved is the total records migrated.
	Moved int
	// PagesFreed counts the pages the trailing compaction removed from the
	// rewritten extents' scan chains — vacated source pages freed outright
	// plus stub-only pages parked for durable forwarding.
	PagesFreed int
}

// Tracer returns the clustering tracer, nil when tracing is off.
func (db *DB) Tracer() *cluster.Tracer { return db.tracer }

// Reorganize computes a clustering plan from the traces collected so far and
// applies it online. Safe to call concurrently with queries: each batch
// migrates under the owning store's exclusive lock, readers resolve moved
// records through forward stubs, and the object cache is invalidated per
// moved object. Returns without error (and without work) when nothing has
// been traced.
func (db *DB) Reorganize() (ReorgStats, error) {
	var rs ReorgStats
	if db.tracer == nil {
		return rs, fmt.Errorf("kernel: clustering is off (set Options.ClusterSampleEvery)")
	}
	db.reorgMu.Lock()
	defer db.reorgMu.Unlock()

	plans := db.tracer.Plan(reorgMinObjects)
	if len(plans) == 0 {
		return rs, nil
	}
	// Placements address (shard, file) pairs; map them back to the class
	// extents the catalog owns. Files not backing a class extent (system
	// tables, indexes) are never rewritten.
	type partKey struct {
		shard int
		file  storage.FileID
	}
	exts := map[partKey]*storage.Extent{}
	for _, cl := range db.Cat.Classes() {
		if !cl.IsClass || cl.Extent() == nil {
			continue
		}
		e := cl.Extent()
		for part := 0; part < e.Parts(); part++ {
			exts[partKey{part, e.PartFileID(part)}] = e
		}
	}

	batchSize := db.clusterBatch
	if batchSize <= 0 {
		batchSize = defaultClusterBatch
	}
	touched := map[*storage.Extent]bool{}
	for _, p := range plans {
		e := exts[partKey{p.Shard, p.File}]
		if e == nil || p.Shard >= len(db.Shards) {
			continue
		}
		sh := db.Shards[p.Shard]
		// Rewrite the WHOLE part, traced objects first in affinity order and
		// the untraced residents after in scan order. Moving only the traced
		// subset would spread a formerly dense part across old and new pages
		// (the hot set gains nothing, the cold tail loses locality); the full
		// rewrite keeps the part dense and fully vacates the source pages.
		order := p.Order
		inPlan := make(map[storage.OID]bool, len(order))
		for _, oid := range order {
			inPlan[oid] = true
		}
		if err := db.Store.ScanExtent(e, func(oid storage.OID, _ []byte) bool {
			if oid.File() == p.File && oid.Shard() == p.Shard && !inPlan[oid] {
				order = append(order, oid)
			}
			return true
		}); err != nil {
			return rs, fmt.Errorf("kernel: reorganize scan: %w", err)
		}
		for start := 0; start < len(order); start += batchSize {
			end := min(start+batchSize, len(order))
			// The first batch opens a fresh destination page; later batches
			// keep packing its tail, so one placement lands dense.
			if err := db.migrateBatch(sh, e, p.Shard, order[start:end], start > 0, &rs); err != nil {
				return rs, err
			}
		}
		rs.Placements++
		touched[e] = true
	}

	// Vacated source pages (everything fully forwarded out) are unlinked
	// and returned to the allocator.
	for e := range touched {
		freed, err := db.Store.CompactExtent(e)
		rs.PagesFreed += freed
		if err != nil {
			return rs, err
		}
	}
	// Old traces describe the old layout; start fresh so the next plan (and
	// the learned clustering factors) reflect post-reorganization behavior.
	db.tracer.Reset()
	db.invalidateStats()
	return rs, nil
}

// migrateBatch moves one batch of records inside one WAL transaction on the
// owning shard's log.
func (db *DB) migrateBatch(sh *Shard, e *storage.Extent, part int, batch []storage.OID, cont bool, rs *ReorgStats) error {
	tx := sh.Log.Begin()
	logger := func(pid storage.PageID, off int, before, after []byte) (uint32, error) {
		lsn, err := sh.Log.Update(tx, pid, off, before, after)
		return uint32(lsn), err
	}
	n, err := db.Store.MigrateRecords(e, part, batch, logger, cont)
	if err != nil {
		return db.rollbackBatch(sh, tx, part, e, batch, fmt.Errorf("kernel: reorganize: %w", err))
	}
	if err := sh.Log.Commit(tx); err != nil {
		return db.rollbackBatch(sh, tx, part, e, batch, fmt.Errorf("kernel: reorganize commit: %w", err))
	}
	// Bump each moved object's cache epoch: a fetch that raced the migration
	// (BeginFetch before, Put after) must not install what it read mid-move.
	if db.ocache != nil {
		for _, oid := range batch {
			db.ocache.Invalidate(oid)
		}
	}
	rs.Moved += n
	return nil
}

// rollbackBatch undoes a failed migration batch and re-aligns the in-memory
// state with the restored disk: the forwarding entries of the batch are
// forgotten (the stubs they mirrored were rolled back), the file's directory
// metadata reloaded, and the object cache dropped wholesale — undo rewrote
// pages underneath it.
func (db *DB) rollbackBatch(sh *Shard, tx wal.TxID, part int, e *storage.Extent, batch []storage.OID, cause error) error {
	aerr := sh.Log.Abort(tx, func(page storage.PageID, off int, image []byte, lsn wal.LSN) error {
		pg, err := sh.Pool.Fetch(page)
		if err != nil {
			return err
		}
		copy(pg.Bytes()[off:], image)
		pg.SetLSN(uint32(lsn))
		return sh.Pool.Unpin(page, true)
	})
	sh.Store.ForgetForward(batch...)
	if f, err := sh.FM.FileByID(e.PartFileID(part)); err == nil {
		_ = sh.FM.ReloadFile(f)
	}
	if db.ocache != nil {
		db.ocache.Reset()
	}
	if aerr != nil {
		return fmt.Errorf("%w (abort also failed: %v)", cause, aerr)
	}
	return cause
}

// startReorganizer launches the background loop applying Reorganize every
// interval until Close.
func (db *DB) startReorganizer(interval time.Duration) {
	db.reorgStop = make(chan struct{})
	db.reorgWG.Add(1)
	go func() {
		defer db.reorgWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-db.reorgStop:
				return
			case <-t.C:
				// Background passes are best-effort; errors surface through
				// the next manual Reorganize or the tier-1 crash tests.
				_, _ = db.Reorganize()
			}
		}
	}()
}
