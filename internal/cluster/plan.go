package cluster

import (
	"sort"

	"mood/internal/storage"
)

// Placement is one part's clustering decision: relocate Order's records onto
// fresh pages of (Shard, File), in exactly that order. Consecutive entries
// land on the same or adjacent pages, so a traversal that follows the
// learned reference pattern reads sequentially instead of scattering.
type Placement struct {
	File  storage.FileID
	Shard int
	Order []storage.OID
}

// node pairs an OID with its heat for seed ordering.
type node struct {
	oid  storage.OID
	heat uint32
}

// neighbor is one weighted adjacency entry of the co-access graph.
type neighbor struct {
	oid storage.OID
	w   uint32
}

// Plan computes placements by greedy reference-graph partitioning, the
// DSTC-style heuristic: within each part, seeds are taken hottest-first, and
// from each seed the chain repeatedly follows the strongest co-access edge
// to a not-yet-placed neighbor. The result is deterministic for a given
// trace (ties break on OID order). Parts with fewer than minObjects traced
// objects are skipped — reorganizing a handful of records cannot pay for
// itself.
func (t *Tracer) Plan(minObjects int) []Placement {
	if minObjects < 1 {
		minObjects = 1
	}
	// Snapshot the stripes. Heat and edges for one part may live in
	// different stripes, so merge everything first.
	heat := map[storage.OID]uint32{}
	adj := map[storage.OID][]neighbor{}
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		for oid, h := range s.heat {
			heat[oid] += h
		}
		for e, w := range s.edge {
			adj[e.a] = append(adj[e.a], neighbor{e.b, w})
			adj[e.b] = append(adj[e.b], neighbor{e.a, w})
		}
		s.mu.Unlock()
	}
	if len(heat) == 0 {
		return nil
	}

	// Group the traced objects by part. Edges never cross parts by
	// construction (ObserveAccess drops cross-file pairs).
	groups := map[fileKey][]node{}
	for oid, h := range heat {
		k := fileKey{oid.Shard(), oid.File()}
		groups[k] = append(groups[k], node{oid, h})
	}
	keys := make([]fileKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Shard != keys[b].Shard {
			return keys[a].Shard < keys[b].Shard
		}
		return keys[a].File < keys[b].File
	})

	var out []Placement
	for _, k := range keys {
		nodes := groups[k]
		if len(nodes) < minObjects {
			continue
		}
		sort.Slice(nodes, func(a, b int) bool {
			if nodes[a].heat != nodes[b].heat {
				return nodes[a].heat > nodes[b].heat
			}
			return nodes[a].oid < nodes[b].oid
		})
		placed := make(map[storage.OID]bool, len(nodes))
		order := make([]storage.OID, 0, len(nodes))
		for _, seed := range nodes {
			if placed[seed.oid] {
				continue
			}
			cur := seed.oid
			placed[cur] = true
			order = append(order, cur)
			// Chain: strongest-affinity unplaced neighbor, repeatedly.
			for {
				var next storage.OID
				var best uint32
				for _, nb := range adj[cur] {
					if placed[nb.oid] {
						continue
					}
					if nb.w > best || (nb.w == best && best > 0 && nb.oid < next) {
						next, best = nb.oid, nb.w
					}
				}
				if best == 0 {
					break
				}
				cur = next
				placed[cur] = true
				order = append(order, cur)
			}
		}
		out = append(out, Placement{File: k.File, Shard: k.Shard, Order: order})
	}
	return out
}
