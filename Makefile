# MOOD — build and verification entry points.
#
#   make build           compile every package and command
#   make test            full test suite
#   make race            full test suite under the race detector
#   make vet             static analysis
#   make crashtest       the seeded crash/recovery torture harness:
#                        single-store, sharded, and mid-migration cluster
#                        modes (CRASHTEST_ITERS=n to scale, CRASHTEST_SEED=n
#                        to replay one failing iteration)
#   make bench-baseline  regenerate BENCH_baseline.json (simulated I/O of a
#                        representative operation set; deterministic)
#   make bench-parallel  regenerate BENCH_parallel.json (morsel-exchange
#                        scaling at workers=1/2/4/8; reads/sim-time columns
#                        deterministic, wall-clock columns machine-local)
#   make bench-exec      executor microbenchmarks (streaming pipeline,
#                        per-row env hoist) with allocation stats
#   make bench-cache     regenerate BENCH_cache.json (object-cache sweep at
#                        cache=0/64KiB/1MiB; reads/hit-rate/decode columns
#                        deterministic, wall-clock columns machine-local)
#   make bench-vector    regenerate BENCH_vector.json (vectorized batches +
#                        compiled predicates vs the row-at-a-time pipeline;
#                        rows/reads/decode columns deterministic, wall-clock
#                        and speedup columns machine-local) plus the
#                        row-vs-vector scan microbenchmarks
#   make bench-shard     regenerate BENCH_shard.json (sharded-store sweep at
#                        shards=1/2/4: scan + hash-join reads must match
#                        across shard counts, insert+update commit
#                        throughput must scale; rows/reads deterministic,
#                        wall-clock and speedup columns machine-local)
#   make exec-race       the executor/algebra/kernel suites under the race
#                        detector (the streaming pipeline's hot path)
#   make parallel-race   every parallel-execution test under the race
#                        detector (exchange operators, sharded pool, bench)
#   make cache-race      the object-cache stack under the race detector
#                        (2Q cache, batch fetch, prefetcher, the kernel's
#                        writer/reader invalidation torture)
#   make vector-race     the vectorized-execution wall under the race
#                        detector (batch-boundary edges, the three-way
#                        differential, expr compile-vs-interpret equality)
#   make shard-race      the sharded-store wall under the race detector
#                        (differential wall at shards=1/2/4, commit
#                        throughput, sharded storage + crash torture)
#   make bench-cluster   regenerate BENCH_cluster.json (clustering protocol:
#                        scattered cold traversal -> trace -> online
#                        reorganization -> clustered cold traversal;
#                        rows/reads/moved deterministic and the read
#                        reduction must clear 2x, wall-clock machine-local)
#                        plus the warm-traversal tracer-overhead benchmarks
#   make cluster-race    the clustering stack under the race detector
#                        (tracer stripes, migration + compaction, the
#                        reorganize-vs-reader/writer torture, the
#                        mid-migration crashtest mode)
#   make bench-commit    regenerate BENCH_commit.json (group-commit sweep:
#                        mixed read/write sessions at 1/8/32 over a 1ms
#                        simulated fsync, off vs on, commits/sec + p50/p99,
#                        plus the snapshot lock-freedom and plan-cache
#                        hit-rate phases; the sweep enforces its >=3x floor
#                        itself) plus the warm-plan allocation benchmarks
#   make commit-race     the commit pipeline under the race detector (group
#                        commit, MVCC snapshots, plan cache, the
#                        crash-during-group-commit torture, the sweep)
#   make bench-join      regenerate BENCH_join.json (join access paths on a
#                        3-hop chain and a many-to-many fan: forward vs
#                        join-index vs hash vs fusion, cold, under latency
#                        replay; rows/fingerprints/reads deterministic,
#                        wall-clock and speedup columns machine-local; the
#                        sweep enforces its >=5x floor itself)
#   make join-race       the join access-path wall under the race detector
#                        (differential wall across all four methods at
#                        shards=1/2/4, BJI shard routing, the concurrent
#                        maintenance torture, the mid-maintenance
#                        crashtest mode, the sweep)
#   make fuzz-expr       bounded 30s fuzz of expr.Compile against the
#                        interpreter (corpus seeds under
#                        internal/expr/testdata/fuzz)
#   make ci              everything a pre-merge check runs

GO ?= go
CRASHTEST_ITERS ?= 120
FUZZ_EXPR_TIME ?= 30s

.PHONY: build test race vet crashtest bench-baseline bench-parallel \
	bench-exec bench-cache bench-vector bench-shard bench-cluster \
	bench-commit bench-join exec-race parallel-race cache-race vector-race \
	shard-race cluster-race commit-race join-race fuzz-expr ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

crashtest:
	CRASHTEST_ITERS=$(CRASHTEST_ITERS) $(GO) test -race -v -run 'TestTorture|TestTornWrite|TestRunIsDeterministic|TestShardedTorture|TestRunShardedIsDeterministic|TestRunClusterIsDeterministic|TestRunJoinIndexIsDeterministic|TestGroupCommitCrashTorture|TestRunGroupFaultFree|TestRunGroupIsDeterministic' ./internal/crashtest

bench-baseline:
	$(GO) run ./cmd/moodbench -bench-json BENCH_baseline.json

bench-parallel:
	$(GO) run ./cmd/moodbench -parallel-json BENCH_parallel.json

bench-exec:
	$(GO) test -bench 'BenchmarkSelect' -benchmem -run '^$$' ./internal/algebra
	$(GO) test -bench . -benchmem -run '^$$' ./internal/exec

exec-race:
	$(GO) test -race ./internal/exec ./internal/algebra ./internal/kernel

parallel-race:
	$(GO) test -race -run Parallel ./internal/...

bench-cache:
	$(GO) run ./cmd/moodbench -cache-json BENCH_cache.json
	$(GO) test -bench 'BenchmarkPathTraversal' -benchmem -run '^$$' ./internal/experiments

cache-race:
	$(GO) test -race ./internal/objcache
	$(GO) test -race -run 'Cache|FetchBatch|Prefetcher|Invalidator' \
		./internal/storage ./internal/catalog ./internal/kernel

bench-vector:
	$(GO) run ./cmd/moodbench -vector-json BENCH_vector.json
	$(GO) test -bench 'BenchmarkScanSelect' -benchmem -run '^$$' ./internal/experiments

vector-race:
	$(GO) test -race -run 'Batch|Differential|Vector|Compile' \
		./internal/exec ./internal/expr ./internal/experiments ./internal/kernel

bench-shard:
	$(GO) run ./cmd/moodbench -shard-json BENCH_shard.json

shard-race:
	$(GO) test -race -run 'Sharded' ./internal/storage ./internal/kernel ./internal/crashtest

bench-cluster:
	$(GO) run ./cmd/moodbench -cluster-json BENCH_cluster.json
	$(GO) test -bench 'BenchmarkWarmTraversalCluster' -benchmem -run '^$$' ./internal/kernel

cluster-race:
	$(GO) test -race ./internal/cluster
	$(GO) test -race -run 'Cluster|Migrate|Reorganize|Forward' \
		./internal/storage ./internal/kernel ./internal/crashtest ./internal/experiments

bench-commit:
	$(GO) run ./cmd/moodbench -commit-json BENCH_commit.json
	$(GO) test -bench 'BenchmarkPreparedQueryWarm|BenchmarkExecuteCold' -benchmem -run '^$$' ./internal/kernel

commit-race:
	$(GO) test -race -run 'GroupCommit|RunGroup|Snapshot|PlanCache|Prepared|MeasureCommit' \
		./internal/wal ./internal/kernel ./internal/crashtest ./internal/experiments

bench-join:
	$(GO) run ./cmd/moodbench -join-json BENCH_join.json

join-race:
	$(GO) test -race ./internal/joinindex
	$(GO) test -race -run 'Join|Fusion|BJI' \
		./internal/cost ./internal/optimizer ./internal/exec \
		./internal/kernel ./internal/crashtest

fuzz-expr:
	$(GO) test -fuzz FuzzCompile -fuzztime $(FUZZ_EXPR_TIME) -run '^FuzzCompile$$' ./internal/expr

ci: build vet test race exec-race parallel-race cache-race vector-race shard-race cluster-race commit-race join-race fuzz-expr bench-vector bench-shard bench-cluster bench-commit bench-join crashtest
