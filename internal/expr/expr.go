// Package expr implements the MOODSQL interpreter's run-time-typed
// expression evaluation (Section 2): "For interpretation of arithmetic and
// Boolean expressions, the types of operands are necessary at run time...
// The code ... mainly overloads addition, subtraction, multiplication,
// division and mode operation operators in the order (+, -, *, /, %) for
// arithmetic expressions. It evaluates AND, OR, NOT, and comparison
// operators for Boolean expressions. Type checking and conversion of
// results are performed at run-time."
//
// The OperandDataType behaviour is reproduced: Integer op Integer yields
// Integer (C++ integer division), widening to LongInteger or Float happens
// when either operand is wider, and results are cast to the destination
// type on assignment.
package expr

import (
	"errors"
	"fmt"
	"strings"

	"mood/internal/object"
	"mood/internal/storage"
)

// Errors surfaced by evaluation.
var (
	ErrType       = errors.New("expr: type error")
	ErrDivByZero  = errors.New("expr: division by zero")
	ErrUnbound    = errors.New("expr: unbound variable")
	ErrNullDeref  = errors.New("expr: dereference of null reference")
	ErrNoSuchAttr = errors.New("expr: no such attribute")
)

// Env supplies the bindings and services an expression needs: range-variable
// values, reference resolution (for path traversal), and method invocation
// (for parameterless-method predicates and method calls).
type Env struct {
	Vars    map[string]object.Value
	OIDs    map[string]storage.OID // the OID bound to each range variable, if any
	Resolve object.Resolver
	Invoke  func(self object.Value, selfOID storage.OID, method string, args []object.Value) (object.Value, error)
}

// Bind returns a copy of the environment with the variable bound.
func (e *Env) Bind(name string, v object.Value, oid storage.OID) *Env {
	out := &Env{
		Vars:    make(map[string]object.Value, len(e.Vars)+1),
		OIDs:    make(map[string]storage.OID, len(e.OIDs)+1),
		Resolve: e.Resolve,
		Invoke:  e.Invoke,
	}
	for k, v := range e.Vars {
		out.Vars[k] = v
	}
	for k, o := range e.OIDs {
		out.OIDs[k] = o
	}
	out.Vars[name] = v
	out.OIDs[name] = oid
	return out
}

// Expr is an evaluable expression node.
type Expr interface {
	Eval(env *Env) (object.Value, error)
	String() string
}

// Const is a literal value.
type Const struct {
	Val object.Value
	// Param, when nonzero, marks this literal as the (Param-1)-th parameter
	// of a normalized statement shape: the plan cache substitutes a fresh
	// value per execution, so constant folding must leave the node alone
	// (folding would bake the first binding's value into the plan shape).
	Param int
}

// Eval returns the literal.
func (c *Const) Eval(*Env) (object.Value, error) { return c.Val, nil }

func (c *Const) String() string { return c.Val.String() }

// Var references a range variable.
type Var struct{ Name string }

// Eval looks the variable up in the environment.
func (v *Var) Eval(env *Env) (object.Value, error) {
	if env == nil || env.Vars == nil {
		return object.Null, fmt.Errorf("%w: %s", ErrUnbound, v.Name)
	}
	val, ok := env.Vars[v.Name]
	if !ok {
		return object.Null, fmt.Errorf("%w: %s", ErrUnbound, v.Name)
	}
	return val, nil
}

func (v *Var) String() string { return v.Name }

// Field accesses an attribute, dereferencing references transparently: this
// node chains into the paper's path expressions (an implicit join per hop).
type Field struct {
	Base Expr
	Name string
}

// Eval evaluates the base, chases a reference if necessary, and projects
// the attribute. Accessing an attribute of a null value yields null (the
// predicate then fails), matching SQL three-valued intuition without
// aborting the scan.
func (f *Field) Eval(env *Env) (object.Value, error) {
	base, err := f.Base.Eval(env)
	if err != nil {
		return object.Null, err
	}
	var resolve object.Resolver
	if env != nil {
		resolve = env.Resolve
	}
	return projectField(&base, f.Name, resolve, f)
}

// projectField is the attribute-projection core shared by the interpreter
// and the compiled closures: reference chasing, null propagation, and the
// exact error values are defined once here so both paths agree by
// construction. base is taken by pointer and never written through — Value
// is a 120-byte struct, and this core runs once per object on the
// vectorized scan's hot path. node is the Field being evaluated, used only
// for error text.
// nullValue backs the null results of projectFieldRef, so returning "no
// such attribute" needs no allocation. Read-only, like every Value handed
// across the expression APIs.
var nullValue = object.Null

// projectFieldRef is projectField without the 120-byte result copy: the
// returned pointer aliases base's field array (or the shared null), is
// read-only, and is valid only while base is. Resolution of a reference
// base allocates, exactly like projectField.
func projectFieldRef(base *object.Value, name string, resolve object.Resolver, node *Field) (*object.Value, error) {
	if base.Kind == object.KindNull {
		return &nullValue, nil
	}
	if base.Kind == object.KindReference {
		if base.Ref.IsNil() {
			return &nullValue, nil
		}
		if resolve == nil {
			return &nullValue, fmt.Errorf("%w: no resolver for %s", ErrNullDeref, node)
		}
		resolved, err := resolve(base.Ref)
		if err != nil {
			return &nullValue, err
		}
		base = &resolved
	}
	if base.Kind != object.KindTuple {
		return &nullValue, fmt.Errorf("%w: %s on %s value", ErrNoSuchAttr, name, base.Kind)
	}
	for i, n := range base.Names {
		if n == name {
			return &base.Fields[i], nil
		}
	}
	return &nullValue, nil // missing attribute reads as null
}

func projectField(base *object.Value, name string, resolve object.Resolver, node *Field) (object.Value, error) {
	v, err := projectFieldRef(base, name, resolve, node)
	return *v, err
}

func (f *Field) String() string { return f.Base.String() + "." + f.Name }

// Call invokes a member function on the base object (late-bound through the
// Function Manager supplied in the environment).
type Call struct {
	Base   Expr
	Method string
	Args   []Expr
}

// Eval evaluates the receiver and arguments, then dispatches.
func (c *Call) Eval(env *Env) (object.Value, error) {
	if env == nil || env.Invoke == nil {
		return object.Null, fmt.Errorf("expr: no method dispatcher for %s", c)
	}
	self, err := c.Base.Eval(env)
	if err != nil {
		return object.Null, err
	}
	var selfOID storage.OID
	if self.Kind == object.KindReference {
		selfOID = self.Ref
		if env.Resolve != nil && !self.Ref.IsNil() {
			if self, err = env.Resolve(self.Ref); err != nil {
				return object.Null, err
			}
		}
	} else if v, ok := c.Base.(*Var); ok && env.OIDs != nil {
		selfOID = env.OIDs[v.Name]
	}
	args := make([]object.Value, len(c.Args))
	for i, a := range c.Args {
		if args[i], err = a.Eval(env); err != nil {
			return object.Null, err
		}
	}
	return env.Invoke(self, selfOID, c.Method, args)
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s.%s(%s)", c.Base, c.Method, strings.Join(parts, ", "))
}

// ArithOp enumerates the overloaded arithmetic operators, in the paper's
// order: +, -, *, /, %.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[op] }

// Arith applies an arithmetic operator with run-time type promotion.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval evaluates both sides and applies the operator. Integer (op) Integer
// is integer arithmetic (truncating division, like the OperandDataType
// example); if either side is Float the computation is carried out in
// floating point; LongInteger widens Integer. String + String concatenates.
func (a *Arith) Eval(env *Env) (object.Value, error) {
	l, err := a.L.Eval(env)
	if err != nil {
		return object.Null, err
	}
	r, err := a.R.Eval(env)
	if err != nil {
		return object.Null, err
	}
	return applyArith(a.Op, &l, &r)
}

// applyArith is the run-time-typed arithmetic core shared by the interpreter
// and the compiled closures. Operands are taken by pointer (and never
// written through) to keep 120-byte Value copies off the per-object path.
func applyArith(op ArithOp, l, r *object.Value) (object.Value, error) {
	if l.IsNull() || r.IsNull() {
		return object.Null, nil
	}
	if op == OpAdd && l.Kind == object.KindString && r.Kind == object.KindString {
		return object.NewString(l.Str + r.Str), nil
	}
	li, lInt := l.AsInt()
	ri, rInt := r.AsInt()
	if lInt && rInt && l.Kind != object.KindFloat && r.Kind != object.KindFloat {
		out, err := intArith(op, li, ri)
		if err != nil {
			return object.Null, err
		}
		if l.Kind == object.KindLongInteger || r.Kind == object.KindLongInteger {
			return object.NewLong(out), nil
		}
		return object.NewInt(int32(out)), nil
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return object.Null, fmt.Errorf("%w: %s %s %s", ErrType, l.Kind, op, r.Kind)
	}
	switch op {
	case OpAdd:
		return object.NewFloat(lf + rf), nil
	case OpSub:
		return object.NewFloat(lf - rf), nil
	case OpMul:
		return object.NewFloat(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return object.Null, ErrDivByZero
		}
		return object.NewFloat(lf / rf), nil
	case OpMod:
		return object.Null, fmt.Errorf("%w: %% needs integer operands", ErrType)
	}
	return object.Null, fmt.Errorf("expr: unknown operator %v", op)
}

func intArith(op ArithOp, l, r int64) (int64, error) {
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, ErrDivByZero
		}
		return l / r, nil
	case OpMod:
		if r == 0 {
			return 0, ErrDivByZero
		}
		return l % r, nil
	}
	return 0, fmt.Errorf("expr: unknown operator %v", op)
}

func (a *Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Neg is unary minus.
type Neg struct{ E Expr }

// Eval negates a numeric value.
func (n *Neg) Eval(env *Env) (object.Value, error) {
	v, err := n.E.Eval(env)
	if err != nil {
		return object.Null, err
	}
	return applyNeg(&v)
}

// applyNeg is the unary-minus core shared by the interpreter and the
// compiled closures.
func applyNeg(v *object.Value) (object.Value, error) {
	if v.IsNull() {
		return object.Null, nil
	}
	switch v.Kind {
	case object.KindInteger:
		return object.NewInt(int32(-v.Int)), nil
	case object.KindLongInteger:
		return object.NewLong(-v.Int), nil
	case object.KindFloat:
		return object.NewFloat(-v.Flt), nil
	}
	return object.Null, fmt.Errorf("%w: -%s", ErrType, v.Kind)
}

func (n *Neg) String() string { return "-" + n.E.String() }

// CmpOp enumerates the comparison operators of a simple predicate
// <P1, theta, oprnd>: =, <>, >=, <=, >, <.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpGe
	OpLe
	OpGt
	OpLt
)

func (op CmpOp) String() string { return [...]string{"=", "<>", ">=", "<=", ">", "<"}[op] }

// Negate returns the complementary operator.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpGe:
		return OpLt
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpLt:
		return OpGe
	}
	return op
}

// Cmp compares two expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval performs the comparison; comparisons involving null are false (and
// <> with null is also false, conservative three-valued logic collapsed to
// two values, as a 1994 system would).
func (c *Cmp) Eval(env *Env) (object.Value, error) {
	l, err := c.L.Eval(env)
	if err != nil {
		return object.Null, err
	}
	r, err := c.R.Eval(env)
	if err != nil {
		return object.Null, err
	}
	return applyCmp(c.Op, &l, &r)
}

// applyCmp is the comparison core shared by the interpreter and the
// compiled closures: null handling, reference identity, and the structural
// fallback live here once. Operands are taken by pointer (and never written
// through) to keep 120-byte Value copies off the per-object path.
func applyCmp(op CmpOp, l, r *object.Value) (object.Value, error) {
	if l.IsNull() || r.IsNull() {
		return object.NewBool(false), nil
	}
	// String-to-string is the common scan-predicate shape; compare in place
	// (same ordering as object.Compare) without copying the operands.
	if l.Kind == object.KindString && r.Kind == object.KindString {
		return cmpResult(op, strings.Compare(l.Str, r.Str))
	}
	// References compare by identity.
	if l.Kind == object.KindReference || r.Kind == object.KindReference {
		switch op {
		case OpEq:
			return object.NewBool(object.Equal(*l, *r)), nil
		case OpNe:
			return object.NewBool(!object.Equal(*l, *r)), nil
		default:
			return object.Null, fmt.Errorf("%w: references only support = and <>", ErrType)
		}
	}
	cmp, ok := object.Compare(*l, *r)
	if !ok {
		// Fall back to structural equality for collections/tuples.
		if op == OpEq {
			return object.NewBool(object.Equal(*l, *r)), nil
		}
		if op == OpNe {
			return object.NewBool(!object.Equal(*l, *r)), nil
		}
		return object.Null, fmt.Errorf("%w: cannot order %s and %s", ErrType, l.Kind, r.Kind)
	}
	return cmpResult(op, cmp)
}

// cmpHolds reports whether an ordering satisfies the operator.
func cmpHolds(op CmpOp, cmp int) (bool, error) {
	switch op {
	case OpEq:
		return cmp == 0, nil
	case OpNe:
		return cmp != 0, nil
	case OpGe:
		return cmp >= 0, nil
	case OpLe:
		return cmp <= 0, nil
	case OpGt:
		return cmp > 0, nil
	case OpLt:
		return cmp < 0, nil
	}
	return false, fmt.Errorf("expr: unknown comparison %v", op)
}

// cmpResult maps an ordering to the boolean the operator selects.
func cmpResult(op CmpOp, cmp int) (object.Value, error) {
	b, err := cmpHolds(op, cmp)
	if err != nil {
		return object.Null, err
	}
	return object.NewBool(b), nil
}

// applyCmpBool is applyCmp for callers that only need the truth value: the
// hot string-to-string shape short-circuits to a bool without constructing
// a 120-byte result Value; everything else delegates to applyCmp and
// coerces exactly as Value.Bool does.
func applyCmpBool(op CmpOp, l, r *object.Value) (bool, error) {
	if l.Kind == object.KindString && r.Kind == object.KindString {
		return cmpHolds(op, strings.Compare(l.Str, r.Str))
	}
	v, err := applyCmp(op, l, r)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

func (c *Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// Between is "e BETWEEN lo AND hi", the predicate form the selectivity
// formulas of Section 4.1 treat specially.
type Between struct {
	E, Lo, Hi Expr
}

// desugar is the Cmp/Logic composition BETWEEN evaluates as; the compiler
// lowers the same composition so both paths evaluate E twice with identical
// short-circuiting.
func (b *Between) desugar() Expr {
	return &Logic{Op: OpAnd,
		L: &Cmp{Op: OpGe, L: b.E, R: b.Lo},
		R: &Cmp{Op: OpLe, L: b.E, R: b.Hi}}
}

// Eval checks lo <= e <= hi.
func (b *Between) Eval(env *Env) (object.Value, error) {
	return b.desugar().Eval(env)
}

func (b *Between) String() string { return fmt.Sprintf("%s BETWEEN %s AND %s", b.E, b.Lo, b.Hi) }

// LogicOp enumerates AND and OR.
type LogicOp uint8

// Boolean connectives.
const (
	OpAnd LogicOp = iota
	OpOr
)

func (op LogicOp) String() string {
	if op == OpOr {
		return "OR"
	}
	return "AND"
}

// Logic is a binary Boolean connective with short-circuit evaluation — the
// behaviour §8.1's predicate ordering heuristic exploits ("analogous to
// short circuiting used in compilers for Boolean expression evaluation").
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// Eval short-circuits: AND stops on false, OR stops on true.
func (l *Logic) Eval(env *Env) (object.Value, error) {
	lv, err := l.L.Eval(env)
	if err != nil {
		return object.Null, err
	}
	lb := lv.Bool()
	if l.Op == OpAnd && !lb {
		return object.NewBool(false), nil
	}
	if l.Op == OpOr && lb {
		return object.NewBool(true), nil
	}
	rv, err := l.R.Eval(env)
	if err != nil {
		return object.Null, err
	}
	return object.NewBool(rv.Bool()), nil
}

func (l *Logic) String() string { return fmt.Sprintf("(%s %s %s)", l.L, l.Op, l.R) }

// Not negates a Boolean expression.
type Not struct{ E Expr }

// Eval negates.
func (n *Not) Eval(env *Env) (object.Value, error) {
	v, err := n.E.Eval(env)
	if err != nil {
		return object.Null, err
	}
	return object.NewBool(!v.Bool()), nil
}

func (n *Not) String() string { return "NOT " + n.E.String() }

// Path builds the nested Field chain for a path expression such as
// v.drivetrain.engine.cylinders.
func Path(varName string, attrs ...string) Expr {
	var e Expr = &Var{Name: varName}
	for _, a := range attrs {
		e = &Field{Base: e, Name: a}
	}
	return e
}

// EvalBool evaluates e and coerces the result to a Go bool.
func EvalBool(e Expr, env *Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

// Cast converts v to the destination type at run time, the
// OperandDataType assignment behaviour ("result's type is casted to double
// since z is double").
func Cast(v object.Value, dst *object.Type) (object.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch dst.Kind {
	case object.KindInteger:
		if i, ok := v.AsInt(); ok {
			return object.NewInt(int32(i)), nil
		}
		if f, ok := v.AsFloat(); ok {
			return object.NewInt(int32(f)), nil
		}
	case object.KindLongInteger:
		if i, ok := v.AsInt(); ok {
			return object.NewLong(i), nil
		}
		if f, ok := v.AsFloat(); ok {
			return object.NewLong(int64(f)), nil
		}
	case object.KindFloat:
		if f, ok := v.AsFloat(); ok {
			return object.NewFloat(f), nil
		}
	case object.KindBoolean:
		if v.Kind == object.KindBoolean {
			return v, nil
		}
	case object.KindString:
		if v.Kind == object.KindString {
			if dst.StrLen > 0 && len(v.Str) > dst.StrLen {
				return object.NewString(v.Str[:dst.StrLen]), nil
			}
			return v, nil
		}
	case object.KindChar:
		if v.Kind == object.KindChar {
			return v, nil
		}
		if i, ok := v.AsInt(); ok {
			return object.NewChar(rune(i)), nil
		}
	default:
		if v.Kind == dst.Kind {
			return v, nil
		}
	}
	return object.Null, fmt.Errorf("%w: cannot cast %s to %s", ErrType, v.Kind, dst)
}
