package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mood/internal/fault"
	"mood/internal/joinindex"
	"mood/internal/object"
	"mood/internal/storage"
	"mood/internal/wal"
)

// Join-index mode: the same seeded crash scenarios, but the workload is
// binary-join-index maintenance — exactly what the kernel's mutation
// observer runs on every object create/update/delete. Each "transaction" is
// one Maintain call (a reference retarget, a delete, or an insert) whose
// btree page mutations are whole-page-image logged under one WAL
// micro-transaction. The crash can land anywhere inside it: between the
// forward-tree insert and the reverse-tree insert, mid page split, before
// the commit force. The invariant: after reboot + repair + recovery,
// re-opening the index at the last COMMITTED tree roots must yield exactly
// the committed pair set — forward and backward probes both — with no trace
// of the loser maintenance.

// RunJoinIndex executes one deterministic mid-maintenance crash/recovery
// iteration. Every error includes cfg.Seed for replay.
func RunJoinIndex(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Seed: cfg.Seed, Point: cfg.Point}
	fail := func(format string, args ...interface{}) (Result, error) {
		return res, fmt.Errorf("crashtest(joinindex) seed %d point %s: %s",
			cfg.Seed, cfg.Point, fmt.Sprintf(format, args...))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	disk.SetDoublewrite(true)
	bp := storage.NewBufferPool(disk, cfg.Frames+8)
	log := wal.NewLog()
	bp.SetFlushHook(log.FlushHook())

	ix, err := joinindex.NewBJI(bp, "C", "ref", "D")
	if err != nil {
		return fail("setup: %v", err)
	}
	// The logger mirrors the kernel's: shard 0's WAL curried into the btree
	// page-logger shape, with the transaction id swapped per micro-tx.
	var curTx wal.TxID
	ix.SetLogger(func(pid storage.PageID, off int, before, after []byte) (uint32, error) {
		lsn, lerr := log.Update(curTx, pid, off, before, after)
		return uint32(lsn), lerr
	})

	// The OID universe: sources carry distinct shard tags (bits 60-63) so
	// the injective key encoding is exercised, targets are a small shared
	// pool so reverse-tree entries develop real fan-in.
	nSrc := 4 * cfg.Txns
	srcs := make([]storage.OID, nSrc)
	for i := range srcs {
		srcs[i] = storage.OID(uint64(i%4)<<60 | uint64(1000+i))
	}
	dsts := make([]storage.OID, 1+nSrc/4)
	for i := range dsts {
		dsts[i] = storage.OID(uint64(2_000_000 + i))
	}

	// model is the committed pair set: src -> referenced target (nil OID =
	// absent). Committed roots are recorded after every commit; reboot
	// re-opens there, so loser root splits cannot strand the verifier.
	model := map[storage.OID]storage.OID{}
	fwdRoot, revRoot := ix.Roots()

	// maintain wraps one Maintain call in a WAL micro-transaction and, on
	// success, folds the delta into the committed model.
	maintain := func(src, oldDst, newDst storage.OID) error {
		oldV, newV := object.Null, object.Null
		if !oldDst.IsNil() {
			oldV = object.NewRef(oldDst)
		}
		if !newDst.IsNil() {
			newV = object.NewRef(newDst)
		}
		curTx = log.Begin()
		res.Started++
		if err := ix.Maintain(src, oldV, newV); err != nil {
			return err
		}
		if err := log.Commit(curTx); err != nil {
			return err
		}
		res.Committed++
		if newDst.IsNil() {
			delete(model, src)
		} else {
			model[src] = newDst
		}
		fwdRoot, revRoot = ix.Roots()
		return nil
	}

	// Seed phase, pre-fault: half the sources get a committed entry, flushed
	// clean, so the workload mutates a tree with real depth.
	for i := 0; i < nSrc/2; i++ {
		if err := maintain(srcs[i], storage.NilOID, dsts[rng.Intn(len(dsts))]); err != nil {
			return fail("seed maintain %d: %v", i, err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		return fail("setup flush: %v", err)
	}
	log.FlushAll()

	// Arm the scenario exactly as Run does.
	fi := fault.New(cfg.Seed)
	switch cfg.Point {
	case PointLogFlushCrash:
		fi.FailAt(fault.OpLogFlush, int64(1+rng.Intn(4)), fault.Crash)
	case PointPageWriteCrash:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(6)), fault.Crash)
	case PointTornWrite:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(6)), fault.Torn)
	case PointTransientWrite:
		fi.FailAt(fault.OpPageWrite, int64(1+rng.Intn(3)), fault.Transient)
	case PointLogAppendCrash:
		// Each Maintain logs a handful of page images (two trees, splits).
		fi.FailAt(fault.OpLogAppend, int64(1+rng.Intn(4*cfg.Txns)), fault.Crash)
	case PointPostCommit:
		// Power-fail after the workload with dirty pages unflushed.
	default:
		return fail("unknown crash point")
	}
	disk.SetFaultInjector(fi)
	log.SetFaultInjector(fi)

	// The maintenance workload: retarget, delete or (re-)insert a random
	// source's reference. A hard fault inside Maintain or Commit kills the
	// machine mid-maintenance — no abort runs, the micro-transaction stays
	// ACTIVE, and recovery must undo the half-applied tree mutations. The
	// last transaction is always left active after a forced flush: the
	// classic steal/no-force loser whose on-disk page images recovery must
	// roll back.
	died := ""
	retry := func(what string, op func() error) error {
		for attempt := 0; ; attempt++ {
			err := op()
			if err == nil {
				return nil
			}
			if errors.Is(err, fault.ErrTransient) && attempt < maxRetries {
				res.Retries++
				continue
			}
			if died == "" {
				died = fmt.Sprintf("%s: %v", what, err)
			}
			return err
		}
	}
	for t := 0; t < cfg.Txns && died == ""; t++ {
		src := srcs[rng.Intn(nSrc)]
		oldDst := model[src]
		var newDst storage.OID
		if oldDst.IsNil() || rng.Intn(3) > 0 {
			// Insert, resurrect a deleted entry, or retarget.
			newDst = dsts[rng.Intn(len(dsts))]
		}
		if t == cfg.Txns-1 {
			// Leave the final maintenance active with its pages (and the log,
			// via the WAL flush hook) forced to disk, then power-fail.
			oldV, newV := object.Null, object.Null
			if !oldDst.IsNil() {
				oldV = object.NewRef(oldDst)
			}
			if !newDst.IsNil() {
				newV = object.NewRef(newDst)
			}
			curTx = log.Begin()
			res.Started++
			if err := ix.Maintain(src, oldV, newV); err != nil {
				died = fmt.Sprintf("loser maintain: %v", err)
				break
			}
			_ = retry("loser flush", func() error { return bp.FlushAll() })
			break
		}
		if err := maintain(src, oldDst, newDst); err != nil {
			// Hard crash mid-maintenance: the machine is dead. No abort runs;
			// the micro-transaction stays active for recovery to undo.
			// (Transient faults only arm page writes, which fire during the
			// retried flush pressure below — never inside Maintain/Commit.)
			died = fmt.Sprintf("maintain: %v", err)
			break
		}
		if rng.Intn(2) == 0 {
			_ = retry("flush pressure", func() error { return bp.FlushAll() })
		}
	}
	res.Fired = len(fi.Trips()) > 0
	res.CrashedAt = died

	// ---- Reboot ----
	disk.SetFaultInjector(nil)
	log.SetFaultInjector(nil)
	for _, id := range disk.CorruptPages() {
		if err := disk.RepairPage(id); err != nil {
			return fail("repair page %d: %v", id, err)
		}
		res.TornFixed++
	}
	bp2 := storage.NewBufferPool(disk, cfg.Frames+8)
	bp2.SetFlushHook(log.FlushHook())
	rstats, err := log.Recover(bp2)
	if err != nil {
		return fail("recovery: %v", err)
	}
	res.Recovery = rstats

	// Re-attach at the last committed roots: recovery undid every loser
	// page image, so the trees rooted there are exactly the committed index.
	ix2, err := joinindex.OpenBJI(bp2, "C", "ref", "D", fwdRoot, revRoot)
	if err != nil {
		return fail("reopen index: %v", err)
	}

	// Forward probes: every committed source resolves to exactly its
	// committed target; deleted (or never-inserted) sources resolve to
	// nothing.
	pairs := 0
	for _, src := range srcs {
		got, err := ix2.Forward(src)
		if err != nil {
			return fail("forward %s: %v", src, err)
		}
		want, ok := model[src]
		if !ok {
			if len(got) != 0 {
				return fail("forward %s: loser entries survived: %v", src, got)
			}
			continue
		}
		if len(got) != 1 || got[0] != want {
			return fail("forward %s = %v, want [%s]", src, got, want)
		}
		pairs++
	}
	if n := ix2.Len(); n != pairs {
		return fail("index holds %d pairs, committed model has %d", n, pairs)
	}
	// Backward probes: each target's fan-in matches the committed model.
	reverse := map[storage.OID][]storage.OID{}
	for src, dst := range model {
		reverse[dst] = append(reverse[dst], src)
	}
	for _, dst := range dsts {
		got, err := ix2.Backward(dst)
		if err != nil {
			return fail("backward %s: %v", dst, err)
		}
		want := reverse[dst]
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return fail("backward %s: %d sources, want %d", dst, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fail("backward %s: got %v, want %v", dst, got, want)
			}
		}
	}
	if active := log.ActiveTransactions(); len(active) != 0 {
		return fail("transactions still active after recovery: %v", active)
	}
	if err := bp2.FlushAll(); err != nil {
		return fail("post-recovery flush: %v", err)
	}
	if bad := disk.CorruptPages(); len(bad) != 0 {
		return fail("checksum mismatches after recovery: pages %v", bad)
	}
	return res, nil
}
