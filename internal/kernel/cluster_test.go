package kernel

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mood/internal/object"
	"mood/internal/vehicledb"
)

// The clustering differential wall: a database reorganized by the online
// clusterer must be row-for-row indistinguishable from an untouched one. The
// same golden + 60-random-predicate query set as the sharded wall runs before
// and after Reorganize at shard counts 1, 2 and 4, serial and parallel, and
// every fingerprint must match the monolithic untouched baseline. A second
// Reorganize exercises re-migration (records that already sit behind a
// forward stub moving again).

// clusterOptions enables the tracer at sampling rate 1 (every access traced)
// so small test workloads produce deterministic plans.
func clusterOptions(nshards, parallelism int) Options {
	opts := shardOptions(nshards, parallelism)
	opts.ClusterSampleEvery = 1
	opts.ObjectCacheBytes = 1 << 20
	return opts
}

func buildClusterVehicleDB(t testing.TB, nshards, parallelism int) *DB {
	t.Helper()
	db, err := Open(clusterOptions(nshards, parallelism))
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		t.Fatal(err)
	}
	cfg := vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5, Subclasses: true,
	}
	if _, err := vehicledb.Populate(db.Cat, cfg); err != nil {
		t.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestClusterDifferentialWall(t *testing.T) {
	queries := append(append([]shardQuery{}, goldenShardQueries...), randomShardQueries()...)

	base := buildShardVehicleDB(t, 0, 0) // untouched, no tracer
	want := make([]string, len(queries))
	for i, sq := range queries {
		res, err := base.Execute(sq.q)
		if err != nil {
			t.Fatalf("baseline %q: %v", sq.q, err)
		}
		want[i] = fingerprint(res, sq.ordered)
	}

	totalMoved := 0
	for _, nshards := range []int{1, 2, 4} {
		for _, par := range []int{0, 4} {
			t.Run(fmt.Sprintf("shards=%d/par=%d", nshards, par), func(t *testing.T) {
				db := buildClusterVehicleDB(t, nshards, par)
				// Warm-up pass populates the tracer with the workload's real
				// reference-traversal pattern (and must already match).
				for i, sq := range queries {
					res, err := db.Execute(sq.q)
					if err != nil {
						t.Fatalf("pre-reorg %q: %v", sq.q, err)
					}
					if got := fingerprint(res, sq.ordered); got != want[i] {
						t.Fatalf("pre-reorg %q diverges from untouched baseline", sq.q)
					}
				}
				for round := 1; round <= 2; round++ {
					rs, err := db.Reorganize()
					if err != nil {
						t.Fatalf("reorganize round %d: %v", round, err)
					}
					if round == 1 && rs.Moved == 0 {
						t.Errorf("round 1 moved no records despite a traced workload")
					}
					totalMoved += rs.Moved
					for i, sq := range queries {
						res, err := db.Execute(sq.q)
						if err != nil {
							t.Fatalf("round %d %q: %v", round, sq.q, err)
						}
						if got := fingerprint(res, sq.ordered); got != want[i] {
							t.Errorf("round %d %q: reorganized store diverges from untouched\n--- reorganized ---\n%s--- untouched ---\n%s",
								round, sq.q, got, want[i])
						}
					}
				}
			})
		}
	}
	if totalMoved == 0 {
		t.Fatal("no configuration moved any records; the wall tested nothing")
	}
}

// TestConcurrentReorganizerTorture runs query readers and committing writers
// against the database while the reorganizer migrates records underneath
// them. Readers compare every result against fingerprints taken before the
// torture; writers churn the Employee extent (disjoint from the compared
// Vehicle queries) so migration interleaves with live inserts and updates.
// Run under -race this validates the forwarding/locking memory model.
func TestConcurrentReorganizerTorture(t *testing.T) {
	db := buildClusterVehicleDB(t, 2, 0)
	queries := []shardQuery{
		{`SELECT v.id FROM Vehicle v WHERE v.weight < 1200`, false},
		{`SELECT v.id, v.weight FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`, false},
		{`SELECT v.manufacturer.name FROM Vehicle v WHERE v.weight < 900`, false},
		{`SELECT COUNT(*) AS n FROM Vehicle v WHERE v.drivetrain.engine.size > 3000`, false},
		{`SELECT v.id, v.weight FROM Vehicle v WHERE v.weight > 2700 ORDER BY v.weight, v.id`, true},
	}
	want := make([]string, len(queries))
	for i, sq := range queries {
		res, err := db.Execute(sq.q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprint(res, sq.ordered)
	}

	const readers, writers, rounds = 3, 2, 12
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers+1)

	wg.Add(1)
	go func() { // the reorganizer, migrating continuously
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if _, err := db.Reorganize(); err != nil {
				errs <- fmt.Errorf("reorganize: %w", err)
				return
			}
		}
	}()
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, sq := range queries {
					res, err := db.Execute(sq.q)
					if err != nil {
						errs <- fmt.Errorf("reader %q: %w", sq.q, err)
						return
					}
					if got := fingerprint(res, sq.ordered); got != want[i] {
						errs <- fmt.Errorf("reader %q: result changed during reorganization\n--- got ---\n%s--- want ---\n%s",
							sq.q, got, want[i])
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds*2; r++ {
				tx := db.Begin()
				oid, err := tx.Create("Employee", employee(fmt.Sprintf("torture-%d-%d", w, r), int32(w*100+r)))
				if err != nil {
					errs <- fmt.Errorf("writer create: %w", err)
					return
				}
				v := employee(fmt.Sprintf("torture-%d-%d", w, r), int32(w*100+r))
				v.SetField("age", object.NewInt(int32(20+r)))
				if err := tx.Update(oid, v); err != nil {
					errs <- fmt.Errorf("writer update: %w", err)
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("writer commit: %w", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The dust settled: results still match, every written employee is
	// present, and no transaction is left behind.
	for i, sq := range queries {
		res, err := db.Execute(sq.q)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(res, sq.ordered); got != want[i] {
			t.Errorf("post-torture %q diverges:\n--- got ---\n%s--- want ---\n%s", sq.q, got, want[i])
		}
	}
	res, err := db.Execute(`SELECT COUNT(*) AS n FROM Employee e WHERE e.age >= 20`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int; got < int64(writers*rounds*2) {
		t.Errorf("only %d torture employees survived, want >= %d", got, writers*rounds*2)
	}
	for _, sh := range db.Shards {
		if active := sh.Log.ActiveTransactions(); len(active) != 0 {
			t.Errorf("transactions still active: %v", active)
		}
	}
}

// TestExplainAnalyzeClusteredCounters checks the clustered= accounting:
// with the tracer on, EXPLAIN ANALYZE of a reference traversal reports how
// many batched reference fetches landed on how many distinct pages, both in
// Analysis and in the rendered output; with the tracer off the annotation
// must not appear.
func TestExplainAnalyzeClusteredCounters(t *testing.T) {
	db := buildClusterVehicleDB(t, 0, 0)
	res, err := db.Execute(`EXPLAIN ANALYZE SELECT v.id FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`)
	if err != nil {
		t.Fatal(err)
	}
	an := db.LastAnalyze
	if an == nil {
		t.Fatal("EXPLAIN ANALYZE did not populate LastAnalyze")
	}
	if !an.ClusterEnabled {
		t.Error("ClusterEnabled false with the tracer on")
	}
	if an.ClusterRefs == 0 || an.ClusterPages == 0 {
		t.Errorf("clustered counters empty on a path traversal: refs=%d pages=%d", an.ClusterRefs, an.ClusterPages)
	}
	if an.ClusterPages > an.ClusterRefs {
		t.Errorf("distinct pages %d exceed references %d", an.ClusterPages, an.ClusterRefs)
	}
	out := res.Rows[0][0].Str
	if !strings.Contains(out, "clustered=") {
		t.Errorf("rendered EXPLAIN ANALYZE lacks clustered= annotation:\n%s", out)
	}

	plain := buildShardVehicleDB(t, 0, 0)
	res, err = plain.Execute(`EXPLAIN ANALYZE SELECT v.id FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if plain.LastAnalyze.ClusterEnabled {
		t.Error("ClusterEnabled true with the tracer off")
	}
	if strings.Contains(res.Rows[0][0].Str, "clustered=") {
		t.Error("tracer-off EXPLAIN ANALYZE carries a clustered= annotation")
	}
}

// TestReorganizeImprovesColdTraversal is the kernel-level perf smoke check
// (the full OCB-style protocol with a genuinely scattered layout lives in
// internal/experiments): after the workload is traced and the store
// reorganized, a cold repeat of the same path traversal must not read more
// pages than before — the vacated source pages are parked out of the scan
// chains, so the doubled file must not scan double — and the traversal's
// measured locality (distinct pages per batched reference fetch) must
// strictly improve, since the plan packs co-dereferenced records together.
func TestReorganizeImprovesColdTraversal(t *testing.T) {
	db := buildClusterVehicleDB(t, 0, 0)
	const q = `SELECT v.id, v.weight FROM Vehicle v WHERE v.drivetrain.engine.cylinders >= 2`

	// cold measures one analyzed execution against an evicted buffer pool and
	// a reset object cache, returning the simulated read count and the
	// traversal's distinct-page locality figure.
	cold := func() (int64, int64) {
		t.Helper()
		for _, sh := range db.Shards {
			if err := sh.Pool.EvictAll(); err != nil {
				t.Fatal(err)
			}
		}
		if db.ObjectCache() != nil {
			db.ObjectCache().Reset()
		}
		before := db.Store.ShardReads()
		if _, err := db.Execute(`EXPLAIN ANALYZE ` + q); err != nil {
			t.Fatal(err)
		}
		var n int64
		for sh, r := range db.Store.ShardReads() {
			n += r - before[sh]
		}
		if db.LastAnalyze == nil || db.LastAnalyze.ClusterRefs == 0 {
			t.Fatal("analyzed traversal recorded no clustered reference fetches")
		}
		return n, db.LastAnalyze.ClusterPages
	}

	scattered, scatteredPages := cold()
	// Trace the traversal a few times so the plan reflects it, then apply.
	for i := 0; i < 3; i++ {
		if _, err := db.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := db.Reorganize()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Moved == 0 {
		t.Fatal("reorganization moved nothing")
	}
	if rs.PagesFreed == 0 {
		t.Error("compaction parked/freed no source pages after a whole-part rewrite")
	}
	// One warm pass absorbs the post-reorganization statistics recollection
	// (invalidateStats forces the next planning to rescan the extents); the
	// cold measurement below then prices the query alone.
	if _, err := db.Execute(q); err != nil {
		t.Fatal(err)
	}
	clustered, clusteredPages := cold()
	t.Logf("cold traversal: reads %d -> %d, locality pages %d -> %d (moved=%d, pages parked/freed=%d)",
		scattered, clustered, scatteredPages, clusteredPages, rs.Moved, rs.PagesFreed)
	if clustered > scattered {
		t.Errorf("reorganization made the cold traversal WORSE: %d -> %d reads", scattered, clustered)
	}
	if clusteredPages >= scatteredPages {
		t.Errorf("traversal locality did not improve: %d -> %d distinct pages", scatteredPages, clusteredPages)
	}
}
