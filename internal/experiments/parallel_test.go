package experiments

import (
	"encoding/json"
	"testing"
	"time"
)

// TestMeasureParallelDeterminismAndScaling checks the two halves of the
// parallel-sweep contract: the simulated side (rows, page reads, simulated
// disk time) is byte-identical across worker counts, and the wall-clock
// side actually speeds up when workers overlap their replayed latency.
func TestMeasureParallelDeterminismAndScaling(t *testing.T) {
	env := smallEnv(t)
	res, err := MeasureParallel(env, 40*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2*len(ParallelWorkerCounts) {
		t.Fatalf("expected %d entries, got %d", 2*len(ParallelWorkerCounts), len(res.Entries))
	}

	byName := map[string][]ParallelEntry{}
	for _, e := range res.Entries {
		byName[e.Name] = append(byName[e.Name], e)
	}
	for name, entries := range byName {
		base := entries[0]
		if base.Workers != 1 {
			t.Fatalf("%s: first entry is workers=%d, want 1", name, base.Workers)
		}
		if base.Rows == 0 || base.Reads == 0 {
			t.Fatalf("%s: empty measurement: %+v", name, base)
		}
		for _, e := range entries[1:] {
			// The scheduler may change when pages are read, never what is
			// read: simulated totals must not depend on the worker count.
			if e.Rows != base.Rows || e.Reads != base.Reads || e.SimulatedMs != base.SimulatedMs {
				t.Errorf("%s workers=%d: simulated totals diverged from workers=1:\n  %+v\n  %+v",
					name, e.Workers, base, e)
			}
		}
		// Latency replay makes the measured phase sleep-dominated, so the
		// speedup from overlapping waits is robust even on one core; the
		// committed artifact shows >=2x, this guards against regressions
		// with slack for loaded test machines. Race instrumentation blows
		// up the CPU share and buries the sleep fraction, so under -race
		// only the determinism half above is asserted.
		if raceEnabled {
			continue
		}
		var w4 ParallelEntry
		for _, e := range entries {
			if e.Workers == 4 {
				w4 = e
			}
		}
		if w4.Speedup < 1.5 {
			t.Errorf("%s: workers=4 speedup %.2fx, want >= 1.5x (wall %vms vs %vms)",
				name, w4.Speedup, w4.WallMs, base.WallMs)
		}
	}

	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("artifact not JSON-serializable: %v", err)
	}
}
