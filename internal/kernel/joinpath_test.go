package kernel

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"mood/internal/cost"
	"mood/internal/lock"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/storage"
	"mood/internal/vehicledb"
)

// The join-access-path wall: every query of the sharded differential suite
// is forced down each of the four physical join strategies — forward
// traversal, binary join index, hash partition, fusion — at shard counts
// 1/2/4, serial and parallel, and must return exactly the rows the unforced
// single store returns. Plus the shard-routing, EXPLAIN-invariant, and
// concurrent-maintenance satellites.

// forcedJoinMethods are the strategies the wall drives every query down.
// BACKWARD_TRAVERSAL is omitted: it flips which extent is scanned, so the
// optimizer only emits it when the cost model picks it — forcing it on an
// arbitrary ordering is not applicable in general.
var forcedJoinMethods = []cost.JoinMethod{
	cost.ForwardTraversal,
	cost.BinaryJoinIndex,
	cost.HashPartition,
	cost.FusionJoin,
}

// buildJoinIndexes materializes maintained BJIs on every reference hop the
// suite's path expressions use, so a forced BINARY_JOIN_INDEX is applicable
// at each join in a multi-hop path.
func buildJoinIndexes(t testing.TB, db *DB) {
	t.Helper()
	for _, ix := range []struct{ name, class, attr string }{
		{"bji_vm", "Vehicle", "manufacturer"},
		{"bji_vd", "Vehicle", "drivetrain"},
		{"bji_de", "VehicleDriveTrain", "engine"},
	} {
		if _, err := db.BuildBJI(ix.name, ix.class, ix.attr); err != nil {
			t.Fatalf("BuildBJI(%s): %v", ix.name, err)
		}
	}
}

// forceJoin pins the session's join method and drops cached plans so the
// next Execute re-optimizes under the override.
func forceJoin(db *DB, m cost.JoinMethod) {
	mm := m
	db.ForceJoin = &mm
	db.invalidatePlans()
}

// TestJoinMethodDifferentialWall is the correctness acceptance test of the
// new access paths: identical rows from every strategy, every shard count,
// serial and parallel.
func TestJoinMethodDifferentialWall(t *testing.T) {
	queries := append(append([]shardQuery{}, goldenShardQueries...), randomShardQueries()...)

	base := buildShardVehicleDB(t, 0, 0)
	want := make([]string, len(queries))
	for i, sq := range queries {
		res, err := base.Execute(sq.q)
		if err != nil {
			t.Fatalf("baseline %q: %v", sq.q, err)
		}
		want[i] = fingerprint(res, sq.ordered)
	}

	// The probe join: one reference hop with a selective left side. Each
	// forced strategy must actually show up in the optimized plan.
	const probe = `SELECT v.id FROM Vehicle v WHERE v.manufacturer.location = "Tokyo"`

	for _, nshards := range []int{1, 2, 4} {
		for _, par := range []int{0, 4} {
			t.Run(fmt.Sprintf("shards=%d/par=%d", nshards, par), func(t *testing.T) {
				db := buildShardVehicleDB(t, nshards, par)
				buildJoinIndexes(t, db)
				for _, m := range forcedJoinMethods {
					forceJoin(db, m)
					if _, err := db.Execute(probe); err != nil {
						t.Fatalf("%s probe: %v", m, err)
					}
					if par == 0 {
						// Serial plans render the join method verbatim; the
						// parallel transform may wrap it in exchanges.
						if got := optimizer.Render(db.LastPlan); !strings.Contains(got, m.String()) {
							t.Fatalf("forced %s did not reach the plan:\n%s", m, got)
						}
					}
					for i, sq := range queries {
						res, err := db.Execute(sq.q)
						if err != nil {
							t.Fatalf("%s %q: %v", m, sq.q, err)
						}
						if got := fingerprint(res, sq.ordered); got != want[i] {
							t.Errorf("%s %q: results diverge from unforced single store\n--- forced ---\n%s--- baseline ---\n%s",
								m, sq.q, got, want[i])
						}
					}
				}
				db.ForceJoin = nil
			})
		}
	}
}

// TestJoinIndexShardRouting checks the sharded-store contract of the index:
// entries keep the OID shard tag (bits 60-63) through the order-preserving
// key encoding, so a probe result resolves on its owning shard at every
// shard count.
func TestJoinIndexShardRouting(t *testing.T) {
	for _, nshards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", nshards), func(t *testing.T) {
			db := buildShardVehicleDB(t, nshards, 0)
			if _, err := db.Execute(`CREATE JOIN INDEX vm ON Vehicle(manufacturer)`); err != nil {
				t.Fatal(err)
			}
			db.bjiMu.RLock()
			ix := db.bjis["vm"]
			db.bjiMu.RUnlock()
			if ix == nil {
				t.Fatal("CREATE JOIN INDEX did not register the index")
			}

			// The extent is the oracle: every vehicle's manufacturer
			// reference must round-trip through the forward tree.
			expected := map[storage.OID]storage.OID{}
			shardsSeen := map[int]bool{}
			err := db.Cat.ScanClosure("Vehicle", nil, func(oid storage.OID, v object.Value) bool {
				mf, _ := v.Field("manufacturer")
				if mf.Kind == object.KindReference && !mf.Ref.IsNil() {
					expected[oid] = mf.Ref
					shardsSeen[oid.Shard()] = true
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(expected) == 0 {
				t.Fatal("no vehicles with a manufacturer reference")
			}
			if nshards > 1 && len(shardsSeen) < 2 {
				t.Fatalf("extent landed entirely on one shard: %v", shardsSeen)
			}

			tx := db.Begin()
			defer tx.Abort()
			for src, want := range expected {
				got, err := ix.Forward(src)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 1 || got[0] != want {
					t.Fatalf("Forward(%s) = %v, want [%s]", src, got, want)
				}
				if got[0].Shard() != want.Shard() {
					t.Fatalf("Forward(%s) lost the shard tag: %s", src, got[0])
				}
				// The probe result must resolve through the (sharded) store.
				if _, class, err := tx.Get(got[0]); err != nil {
					t.Fatalf("probe result %s does not resolve: %v", got[0], err)
				} else if class != "Company" {
					t.Fatalf("probe result %s resolved to class %s, want Company", got[0], class)
				}
			}

			// Backward probes carry source OIDs from every shard that holds
			// referencing vehicles, each resolvable in place.
			reverse := map[storage.OID][]storage.OID{}
			for src, dst := range expected {
				reverse[dst] = append(reverse[dst], src)
			}
			backSeen := map[int]bool{}
			for dst, wantSrcs := range reverse {
				got, err := ix.Backward(dst)
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(wantSrcs, func(i, j int) bool { return wantSrcs[i] < wantSrcs[j] })
				if fmt.Sprint(got) != fmt.Sprint(wantSrcs) {
					t.Fatalf("Backward(%s) = %v, want %v", dst, got, wantSrcs)
				}
				for _, src := range got {
					backSeen[src.Shard()] = true
					if _, _, err := tx.Get(src); err != nil {
						t.Fatalf("backward result %s does not resolve: %v", src, err)
					}
				}
			}
			if nshards > 1 && len(backSeen) < 2 {
				t.Fatalf("backward probes surfaced a single shard only: %v", backSeen)
			}
		})
	}
}

// TestExplainAnalyzeJoinAccessPaths checks the instrumentation satellite:
// under every forced strategy EXPLAIN ANALYZE annotates the join operator
// with its physical access path, and the reported page total still equals
// the DiskSim read-counter delta on a cold buffer pool.
func TestExplainAnalyzeJoinAccessPaths(t *testing.T) {
	db := buildShardVehicleDB(t, 0, 0)
	buildJoinIndexes(t, db)

	const query = `SELECT v.id FROM Vehicle v WHERE v.manufacturer.location = "Tokyo"`
	base, err := db.Execute(query)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		method cost.JoinMethod
		marker string
	}{
		{cost.ForwardTraversal, "access=forward"},
		{cost.BinaryJoinIndex, "access=joinindex"},
		{cost.HashPartition, "access=hash"},
		{cost.FusionJoin, "access=fusion"},
	} {
		t.Run(tc.method.String(), func(t *testing.T) {
			forceJoin(db, tc.method)
			if err := db.Pool.EvictAll(); err != nil {
				t.Fatal(err)
			}
			scope := db.Disk.Scope()
			res, err := db.Execute(`EXPLAIN ANALYZE ` + query)
			if err != nil {
				t.Fatal(err)
			}
			delta := scope.Delta()

			an := db.LastAnalyze
			if an == nil {
				t.Fatal("EXPLAIN ANALYZE did not populate LastAnalyze")
			}
			if an.TotalPages != delta.Reads() {
				t.Errorf("analysis reports %d pages, DiskSim delta is %d", an.TotalPages, delta.Reads())
			}
			if an.TotalPages == 0 {
				t.Error("expected nonzero page reads on a cold buffer pool")
			}
			if an.Root.RowsOut != int64(len(base.Rows)) {
				t.Errorf("root rows out = %d, plain SELECT returned %d rows", an.Root.RowsOut, len(base.Rows))
			}
			out := res.Rows[0][0].Str
			if !strings.Contains(out, tc.marker) {
				t.Errorf("EXPLAIN ANALYZE output lacks %q:\n%s", tc.marker, out)
			}
			if !strings.Contains(out, tc.method.String()) {
				t.Errorf("EXPLAIN ANALYZE output lacks the plan method %s:\n%s", tc.method, out)
			}
		})
	}
	db.ForceJoin = nil
}

// TestBJIMaintenanceTortureConcurrent is the maintenance torture: writers
// retarget, delete and resurrect referenced objects while readers scan
// through the index, and afterwards the index must mirror the extent
// exactly — no lost pairs, no loser pairs, deleted sources gone.
func TestBJIMaintenanceTortureConcurrent(t *testing.T) {
	db, err := Open(shardOptions(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := vehicledb.DefineSchema(db.Cat); err != nil {
		t.Fatal(err)
	}
	vdb, err := vehicledb.Populate(db.Cat, vehicledb.Config{
		Vehicles: 200, DriveTrains: 100, Engines: 100,
		Companies: 200, Employees: 4, Seed: 7, Subclasses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RefreshStats(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN INDEX vm ON Vehicle(manufacturer)`); err != nil {
		t.Fatal(err)
	}
	// Readers go through the index, not around it.
	forceJoin(db, cost.BinaryJoinIndex)

	const (
		writers = 4
		opsPer  = 30
		readers = 2
	)
	deleted := make([][]storage.OID, writers)

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Execute(`SELECT v.id FROM Vehicle v WHERE v.manufacturer.location = "Tokyo"`); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}

	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			rng := rand.New(rand.NewSource(int64(900 + w)))
			// Each writer owns a disjoint slice of vehicles, so retries are
			// about page-level contention, never write-write conflicts.
			var mine []storage.OID
			for i := w; i < len(vdb.Vehicles); i += writers {
				mine = append(mine, vdb.Vehicles[i])
			}
			commit := func(body func(tx *Tx) error) error {
				for attempt := 0; ; attempt++ {
					tx := db.Begin()
					err := body(tx)
					if err == nil {
						if err = tx.Commit(); err == nil {
							return nil
						}
					} else {
						tx.Abort()
					}
					if !errors.Is(err, lock.ErrDeadlock) || attempt > 50 {
						return err
					}
				}
			}
			for op := 0; op < opsPer; op++ {
				i := rng.Intn(len(mine))
				oid := mine[i]
				var err error
				if op%3 < 2 {
					// Retarget the reference.
					dst := vdb.Companies[rng.Intn(len(vdb.Companies))]
					err = commit(func(tx *Tx) error {
						v, _, gerr := tx.Get(oid)
						if gerr != nil {
							return gerr
						}
						v.SetField("manufacturer", object.NewRef(dst))
						return tx.Update(oid, v)
					})
				} else {
					// Delete, then resurrect: a new vehicle referencing the
					// same company, so the reverse tree sees a remove and a
					// re-insert under the same target key.
					err = commit(func(tx *Tx) error {
						v, _, gerr := tx.Get(oid)
						if gerr != nil {
							return gerr
						}
						mf, _ := v.Field("manufacturer")
						if derr := tx.Delete(oid); derr != nil {
							return derr
						}
						fresh, cerr := tx.Create("Vehicle", object.NewTuple(
							[]string{"id", "weight", "drivetrain", "manufacturer"},
							[]object.Value{
								object.NewInt(int32(10000 + w*1000 + op)),
								object.NewInt(int32(900 + rng.Intn(2000))),
								object.NewRef(vdb.DriveTrains[rng.Intn(len(vdb.DriveTrains))]),
								mf,
							},
						))
						if cerr != nil {
							return cerr
						}
						deleted[w] = append(deleted[w], oid)
						mine[i] = fresh
						return nil
					})
				}
				if err != nil {
					t.Errorf("writer %d op %d: %v", w, op, err)
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		return
	}

	// Final consistency: the index must mirror the extent closure exactly.
	db.bjiMu.RLock()
	ix := db.bjis["vm"]
	db.bjiMu.RUnlock()
	if ix == nil {
		t.Fatal("maintenance dropped the index")
	}
	expected := map[storage.OID]storage.OID{}
	err = db.Cat.ScanClosure("Vehicle", nil, func(oid storage.OID, v object.Value) bool {
		mf, _ := v.Field("manufacturer")
		if mf.Kind == object.KindReference && !mf.Ref.IsNil() {
			expected[oid] = mf.Ref
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for src, want := range expected {
		got, err := ix.Forward(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != want {
			t.Errorf("Forward(%s) = %v, want [%s]", src, got, want)
		}
	}
	if n := ix.Len(); n != len(expected) {
		t.Errorf("index holds %d pairs, extent induces %d", n, len(expected))
	}
	nDeleted := 0
	for _, batch := range deleted {
		for _, oid := range batch {
			nDeleted++
			if _, live := expected[oid]; live {
				// The store reuses freed slots, so a resurrected vehicle may
				// carry a deleted OID verbatim; the extent oracle above
				// already pinned its index entry.
				continue
			}
			got, err := ix.Forward(oid)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Errorf("deleted vehicle %s still indexed: %v", oid, got)
			}
		}
	}
	if nDeleted == 0 {
		t.Error("torture deleted nothing; the resurrection path never ran")
	}
	// Reverse-tree fan-in against the same oracle.
	reverse := map[storage.OID]int{}
	for _, dst := range expected {
		reverse[dst]++
	}
	for _, dst := range vdb.Companies {
		got, err := ix.Backward(dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != reverse[dst] {
			t.Errorf("Backward(%s): %d sources, extent induces %d", dst, len(got), reverse[dst])
		}
	}
	db.ForceJoin = nil
}
