package kernel

import (
	"os"
	"path/filepath"
	"testing"

	"mood/internal/exec"
	"mood/internal/optimizer"
	"mood/internal/sql"
)

// TestGoldenSuiteStreamingDifferential replays the full MOODSQL golden
// script and, for every SELECT, runs the optimized plan through both the
// streaming pipeline and the retained materializing executor, demanding
// identical rendered results and a stable LastPlan rendering. DDL and DML
// statements execute normally so each query sees the same database state
// the golden run does.
func TestGoldenSuiteStreamingDifferential(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "basic.moodsql"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	selects := 0
	for _, stmt := range splitScript(string(script)) {
		parsed, err := sql.Parse(stmt)
		if err != nil {
			continue // the golden file records parse errors; skip here
		}
		sel, isSelect := parsed.(*sql.Select)
		if !isSelect {
			if _, err := db.ExecuteStmt(parsed); err != nil {
				continue // intentional error cases advance no state
			}
			continue
		}

		plan, err := db.optimize(sel)
		if err != nil {
			continue
		}
		renderBefore := optimizer.Render(plan)

		stream, err := db.Exec.Execute(plan)
		if err != nil {
			t.Fatalf("%s: streaming execute: %v", stmt, err)
		}
		eager, err := db.Exec.ExecuteMaterialized(plan)
		if err != nil {
			t.Fatalf("%s: materialized execute: %v", stmt, err)
		}
		got, want := renderResult(exec.Extract(stream)), renderResult(exec.Extract(eager))
		if got != want {
			t.Errorf("%s: paths disagree:\n--- streaming ---\n%s--- materialized ---\n%s", stmt, got, want)
		}
		if after := optimizer.Render(db.LastPlan); after != renderBefore {
			t.Errorf("%s: LastPlan rendering changed across execution:\n--- before ---\n%s--- after ---\n%s",
				stmt, renderBefore, after)
		}
		selects++
	}
	if selects == 0 {
		t.Fatal("golden script produced no successfully planned SELECTs")
	}
}
