package wal

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mood/internal/storage"
)

// TestGroupCommitBatchesForces pins the amortization: N sessions committing
// concurrently through one group-commit log must share forces instead of
// paying one each. With a real sync delay the committers pile up behind the
// leader's sleep, so the force count lands well below the commit count.
func TestGroupCommitBatchesForces(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 64)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	l.SetGroupCommit(true)
	l.SetSyncDelay(2 * time.Millisecond)
	page := newPageWithData(t, bp, 0)
	bp.FlushAll()

	const sessions = 16
	const txPerSession = 4
	var mu sync.Mutex // serializes loggedWrite's page pin; commits run free
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < txPerSession; i++ {
				tx := l.Begin()
				mu.Lock()
				loggedWrite(t, l, bp, tx, page, 32+s*64+i*8, []byte{byte(s + 1)})
				mu.Unlock()
				if err := l.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	commits := int64(sessions * txPerSession)
	if fc := l.FlushCount(); fc >= commits {
		t.Errorf("group commit did not batch: %d forces for %d commits", fc, commits)
	}
	if n := len(l.ActiveTransactions()); n != 0 {
		t.Errorf("%d transactions still active", n)
	}

	// Every acknowledged commit must be durable: crash and recover.
	bp2 := storage.NewBufferPool(disk, 64)
	bp2.SetFlushHook(l.FlushHook())
	if _, err := l.Recover(bp2); err != nil {
		t.Fatal(err)
	}
	pg, _ := bp2.Fetch(page)
	for s := 0; s < sessions; s++ {
		for i := 0; i < txPerSession; i++ {
			if got := pg.Bytes()[32+s*64+i*8]; got != byte(s+1) {
				t.Errorf("session %d tx %d: acknowledged write lost (got %d)", s, i, got)
			}
		}
	}
	bp2.Unpin(page, false)
}

// TestGroupCommitSingleSession checks the degenerate window: one committer
// at a time still gets exactly one force per commit and full durability.
func TestGroupCommitSingleSession(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 8)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	l.SetGroupCommit(true)
	page := newPageWithData(t, bp, 0)

	for i := 0; i < 3; i++ {
		tx := l.Begin()
		loggedWrite(t, l, bp, tx, page, 40+i*8, []byte{0xAA})
		if err := l.Commit(tx); err != nil {
			t.Fatal(err)
		}
		if got := l.FlushedLSN(); got < l.nextLSN-1 {
			t.Errorf("commit %d not durable: flushed=%d next=%d", i, got, l.nextLSN)
		}
	}
	if err := l.Commit(99); err == nil {
		t.Error("commit of unknown tx succeeded")
	}
}

// TestCheckpointTruncateReclaimsMemory pins the satellite: Len() must shrink
// at a truncating checkpoint once pages are flushed, while an active
// transaction's chain is kept for undo.
func TestCheckpointTruncateReclaimsMemory(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 8)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	page := newPageWithData(t, bp, 0)
	bp.FlushAll()

	for i := 0; i < 50; i++ {
		tx := l.Begin()
		loggedWrite(t, l, bp, tx, page, 32+i*8, []byte{byte(i + 1)})
		if err := l.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Len()
	bp.FlushAll()
	_, freed := l.CheckpointTruncate()
	if freed == 0 || l.Len() >= before {
		t.Fatalf("truncation reclaimed nothing: len %d -> %d (freed %d)", before, l.Len(), freed)
	}

	// An active transaction pins its chain: nothing below its begin record
	// may be dropped, and abort must still find the full chain to undo.
	loser := l.Begin()
	loggedWrite(t, l, bp, loser, page, 800, []byte("keepme"))
	for i := 0; i < 20; i++ {
		tx := l.Begin()
		loggedWrite(t, l, bp, tx, page, 1000+i*8, []byte{0xBB})
		if err := l.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	bp.FlushAll()
	// Only the stale checkpoint record below the loser's begin is
	// reclaimable; the loser's chain and everything after it must stay.
	_, freed = l.CheckpointTruncate()
	if freed > 1 {
		t.Errorf("truncated %d records below an active transaction's begin", freed)
	}
	apply := func(p storage.PageID, off int, img []byte, lsn LSN) error {
		pg, err := bp.Fetch(p)
		if err != nil {
			return err
		}
		copy(pg.Bytes()[off:], img)
		pg.SetLSN(uint32(lsn))
		return bp.Unpin(p, true)
	}
	if err := l.Abort(loser, apply); err != nil {
		t.Fatal(err)
	}
	pg, _ := bp.Fetch(page)
	if !bytes.Equal(pg.Bytes()[800:806], make([]byte, 6)) {
		t.Errorf("abort after truncation left data: %q", pg.Bytes()[800:806])
	}
	bp.Unpin(page, false)
}

// TestRecoveryAfterTruncation crashes after a truncating checkpoint and
// proves recovery still produces the right state: committed data (whose
// records were dropped, but whose pages were flushed) survives, and both a
// pre-truncation loser (chain retained) and a post-truncation loser are
// undone.
func TestRecoveryAfterTruncation(t *testing.T) {
	disk := storage.NewDiskSim(storage.DefaultDiskParams())
	bp := storage.NewBufferPool(disk, 8)
	l := NewLog()
	bp.SetFlushHook(l.FlushHook())
	page := newPageWithData(t, bp, 0)
	bp.FlushAll()

	winner := l.Begin()
	loggedWrite(t, l, bp, winner, page, 100, []byte("old-winner"))
	if err := l.Commit(winner); err != nil {
		t.Fatal(err)
	}
	oldLoser := l.Begin()
	loggedWrite(t, l, bp, oldLoser, page, 200, []byte("old-loser"))

	bp.FlushAll() // redo info for the winner now on disk
	if _, freed := l.CheckpointTruncate(); freed == 0 {
		t.Fatal("expected the winner's records to be reclaimed")
	}

	newWinner := l.Begin()
	loggedWrite(t, l, bp, newWinner, page, 300, []byte("new-winner"))
	if err := l.Commit(newWinner); err != nil {
		t.Fatal(err)
	}
	newLoser := l.Begin()
	loggedWrite(t, l, bp, newLoser, page, 400, []byte("new-loser"))
	bp.FlushAll()

	// Crash: buffered pages lost, volatile log suffix lost.
	bp2 := crash(disk)
	bp2.SetFlushHook(l.FlushHook())
	st, err := l.Recover(bp2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Losers != 2 {
		t.Errorf("losers = %d, want 2 (pre- and post-truncation)", st.Losers)
	}
	pg, _ := bp2.Fetch(page)
	if string(pg.Bytes()[100:110]) != "old-winner" {
		t.Errorf("pre-truncation committed data lost: %q", pg.Bytes()[100:110])
	}
	if string(pg.Bytes()[300:310]) != "new-winner" {
		t.Errorf("post-truncation committed data lost: %q", pg.Bytes()[300:310])
	}
	if !bytes.Equal(pg.Bytes()[200:209], make([]byte, 9)) {
		t.Errorf("pre-truncation loser survived: %q", pg.Bytes()[200:209])
	}
	if !bytes.Equal(pg.Bytes()[400:409], make([]byte, 9)) {
		t.Errorf("post-truncation loser survived: %q", pg.Bytes()[400:409])
	}
	bp2.Unpin(page, false)
	if n := len(l.ActiveTransactions()); n != 0 {
		t.Errorf("%d transactions active after recovery", n)
	}

	// The log keeps working after a post-truncation recovery.
	tx := l.Begin()
	loggedWrite(t, l, bp2, tx, page, 500, []byte("after"))
	if err := l.Commit(tx); err != nil {
		t.Fatal(err)
	}
}
