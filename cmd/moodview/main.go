// Command moodview is the text-mode MoodView (Section 9): schema browser,
// class designer output, object browser with the cursor protocol, and the
// R-tree spatial index demo. It loads the paper's vehicle database and
// walks through each MoodView tool non-interactively, so its output doubles
// as a demonstration transcript.
//
//	moodview             # run the full tour
//	moodview -scale 0.02 # smaller/bigger demo database
package main

import (
	"flag"
	"fmt"
	"os"

	"mood/internal/experiments"
	"mood/internal/kernel"
	"mood/internal/rtree"
	"mood/internal/vehicledb"
	"mood/internal/view"
)

func main() {
	scale := flag.Float64("scale", 0.01, "demo database scale (1.0 = paper)")
	flag.Parse()

	db, err := kernel.Open(kernel.DefaultOptions())
	fail(err)
	fail(vehicledb.DefineSchema(db.Cat))
	vdb, err := vehicledb.Populate(db.Cat, experiments.Scale(*scale).Config())
	fail(err)
	fail(db.RefreshStats())

	fmt.Println("MoodView (text mode) - the paper's Section 9 tools")
	fmt.Println("==================================================")

	// Schema Browser: the DAG placement of Figure 9.1(c).
	fmt.Print("\n-- Schema Browser (class hierarchy DAG) --\n\n")
	fmt.Print(view.SchemaOverview(db))

	// Class Presentation: Figure 9.2(b).
	fmt.Print("\n-- Class Presentation: Vehicle --\n\n")
	out, err := view.ClassPresentation(db, "Vehicle")
	fail(err)
	fmt.Print(out)

	// Data definition roundtrip: Figure 9.1(b)'s C++ view, as DDL here.
	fmt.Print("\n-- Generated DDL for Vehicle (class designer output) --\n\n")
	ddl, err := view.GenerateDDL(db, "Vehicle")
	fail(err)
	fmt.Println(ddl)

	// Generic object presentation: Figure 9.3.
	fmt.Print("\n-- Generic Object Presentation (object graph) --\n\n")
	graph, err := view.ObjectGraph(db, vdb.Vehicles[0], 3)
	fail(err)
	fmt.Print(graph)

	// Query manager with history.
	fmt.Print("\n-- Query Manager --\n\n")
	qm := view.NewQueryManager(db)
	for _, q := range []string{
		`SELECT COUNT(*) AS vehicles FROM Vehicle v;`,
		`SELECT e.cylinders, COUNT(*) AS n FROM VehicleEngine e GROUP BY e.cylinders ORDER BY e.cylinders;`,
	} {
		fmt.Println("mood>", q)
		res, err := qm.Run(q)
		fail(err)
		fmt.Print(res.String())
	}
	fmt.Println("history:")
	for i, h := range qm.History() {
		fmt.Printf("  %d: %s\n", i+1, h)
	}

	// Cursor protocol: Section 9.4's back-and-forth.
	fmt.Print("\n-- Cursor (sequence back and forth) --\n\n")
	cur, err := db.OpenCursor(`SELECT v FROM Vehicle v WHERE v.id < 3 ORDER BY v.id`)
	fail(err)
	for {
		ov, err := cur.Next()
		if err != nil {
			break
		}
		fmt.Println(" next:", ov)
	}
	ov, err := cur.Prev()
	fail(err)
	fmt.Println(" prev:", ov)

	// R-tree: the graphical indexing tool for spatial data.
	fmt.Print("\n-- Spatial index (R-tree) --\n\n")
	tr := rtree.New(8)
	for i, oid := range vdb.Companies {
		if i >= 100 {
			break
		}
		x := float64(i%10) * 10
		y := float64(i/10) * 10
		tr.Insert(rtree.Point(x, y), oid)
	}
	fmt.Printf("indexed %d company locations, tree height %d\n", tr.Len(), tr.Height())
	window := rtree.NewRect(0, 0, 25, 25)
	n := 0
	tr.Search(window, func(e rtree.Entry) bool { n++; return true })
	fmt.Printf("window %v contains %d companies\n", window, n)
	near := tr.Nearest(42, 42, 3)
	fmt.Printf("3 nearest to (42,42):")
	for _, e := range near {
		fmt.Printf(" %v", e.Rect)
	}
	fmt.Println()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "moodview:", err)
		os.Exit(1)
	}
}
