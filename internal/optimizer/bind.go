package optimizer

import (
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/sql"
)

// Bind clones a cached access plan, substituting the parameter-tagged
// constants (expr.Const.Param / IndSelPlan.ConstParam) with fresh values.
// params is in shape order: parameter i binds params[i-1]. The input plan is
// never mutated — it stays in the cache and may be bound concurrently by
// other sessions. Cardinality estimates and access-path choices are those of
// the first optimization (a "generic plan"): re-binding changes constants
// only, not the plan shape.
func Bind(p Plan, params []object.Value) Plan {
	return bindPlan(p, params)
}

func bindParam(v object.Value, idx int, params []object.Value) object.Value {
	if idx >= 1 && idx <= len(params) {
		return params[idx-1]
	}
	return v
}

func bindPlan(p Plan, params []object.Value) Plan {
	switch n := p.(type) {
	case *BindPlan:
		c := *n
		return &c
	case *SelectPlan:
		return &SelectPlan{Input: bindPlan(n.Input, params), Pred: bindExpr(n.Pred, params), card: n.card}
	case *IndSelPlan:
		c := *n
		c.Pred.Constant = bindParam(n.Pred.Constant, n.ConstParam, params)
		c.Pred.Constant2 = bindParam(n.Pred.Constant2, n.Const2Param, params)
		return &c
	case *IntersectPlan:
		inputs := make([]Plan, len(n.Inputs))
		for i, in := range n.Inputs {
			inputs[i] = bindPlan(in, params)
		}
		return &IntersectPlan{Inputs: inputs, card: n.card}
	case *JoinPlan:
		c := *n
		c.Left = bindPlan(n.Left, params)
		c.Right = bindPlan(n.Right, params)
		return &c
	case *CrossPlan:
		return &CrossPlan{Left: bindPlan(n.Left, params), Right: bindPlan(n.Right, params), card: n.card}
	case *ProjectPlan:
		return &ProjectPlan{Input: bindPlan(n.Input, params), Items: bindProjs(n.Items, params), card: n.card}
	case *GroupPlan:
		return &GroupPlan{
			Input: bindPlan(n.Input, params), By: n.By,
			Having: bindExpr(n.Having, params), Projs: bindProjs(n.Projs, params),
			card: n.card,
		}
	case *SortPlan:
		return &SortPlan{Input: bindPlan(n.Input, params), Keys: n.Keys, card: n.card}
	case *UnionPlan:
		inputs := make([]Plan, len(n.Inputs))
		for i, in := range n.Inputs {
			inputs[i] = bindPlan(in, params)
		}
		return &UnionPlan{Inputs: inputs, Vars: n.Vars, card: n.card}
	case *DupElimPlan:
		return &DupElimPlan{Input: bindPlan(n.Input, params), card: n.card}
	case *ExchangePlan:
		return &ExchangePlan{Input: bindPlan(n.Input, params), Workers: n.Workers, card: n.card}
	}
	return p
}

func bindProjs(items []sql.ProjItem, params []object.Value) []sql.ProjItem {
	out := make([]sql.ProjItem, len(items))
	for i, it := range items {
		it.Expr = bindExpr(it.Expr, params)
		out[i] = it
	}
	return out
}

// bindExpr clones an expression tree, replacing parameter-tagged constants.
// Const nodes are always copied (never mutated in place): the cached tree is
// shared across sessions.
func bindExpr(e expr.Expr, params []object.Value) expr.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *expr.Const:
		if n.Param == 0 {
			return n
		}
		return &expr.Const{Val: bindParam(n.Val, n.Param, params), Param: n.Param}
	case *expr.Var:
		return n
	case *expr.Field:
		return &expr.Field{Base: bindExpr(n.Base, params), Name: n.Name}
	case *expr.Call:
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = bindExpr(a, params)
		}
		return &expr.Call{Base: bindExpr(n.Base, params), Method: n.Method, Args: args}
	case *expr.Arith:
		return &expr.Arith{Op: n.Op, L: bindExpr(n.L, params), R: bindExpr(n.R, params)}
	case *expr.Cmp:
		return &expr.Cmp{Op: n.Op, L: bindExpr(n.L, params), R: bindExpr(n.R, params)}
	case *expr.Between:
		return &expr.Between{E: bindExpr(n.E, params), Lo: bindExpr(n.Lo, params), Hi: bindExpr(n.Hi, params)}
	case *expr.Logic:
		return &expr.Logic{Op: n.Op, L: bindExpr(n.L, params), R: bindExpr(n.R, params)}
	case *expr.Not:
		return &expr.Not{E: bindExpr(n.E, params)}
	case *expr.Neg:
		return &expr.Neg{E: bindExpr(n.E, params)}
	}
	return e
}
