package testutil

import "testing"

func TestSeedDefault(t *testing.T) {
	t.Setenv(SeedEnv, "")
	if got := Seed(t, 42); got != 42 {
		t.Errorf("Seed = %d, want the default 42", got)
	}
}

func TestSeedFromEnv(t *testing.T) {
	t.Setenv(SeedEnv, "987654321")
	if got := Seed(t, 42); got != 987654321 {
		t.Errorf("Seed = %d, want the env override 987654321", got)
	}
}
