package crashtest

import (
	"fmt"
	"testing"
)

// TestTortureClusterMigration is the mid-migration variant of the torture
// run: every iteration's workload is WAL-logged record migration (the online
// reorganizer's primitive), and the crash lands inside a batch. Replay a
// failure with CRASHTEST_SEED exactly as for TestTortureCrashRecovery.
func TestTortureClusterMigration(t *testing.T) {
	if seed, ok := envInt64("CRASHTEST_SEED", 0); ok {
		for _, point := range Points {
			res, err := RunCluster(Config{Seed: seed, Point: point})
			if err != nil {
				t.Errorf("%v", err)
			}
			t.Logf("seed %d %s: fired=%v crashed=%q committed=%d retries=%d torn=%d recovery=%+v",
				seed, point, res.Fired, res.CrashedAt, res.Committed, res.Retries, res.TornFixed, res.Recovery)
		}
		return
	}

	iters, _ := envInt64("CRASHTEST_ITERS", defaultIterations)
	if iters < int64(len(Points)) {
		iters = int64(len(Points))
	}
	const baseSeed = 7000
	fired := map[Point]int{}
	stopped := map[Point]int{}
	committedTotal, redone, undone, tornFixed := 0, 0, 0, 0
	for i := int64(0); i < iters; i++ {
		point := Points[i%int64(len(Points))]
		seed := baseSeed + i
		res, err := RunCluster(Config{Seed: seed, Point: point})
		if err != nil {
			t.Fatalf("%v\nreplay: CRASHTEST_SEED=%d go test ./internal/crashtest -run TestTortureCluster -v", err, seed)
		}
		if res.Fired {
			fired[point]++
		}
		if res.CrashedAt != "" {
			stopped[point]++
		}
		committedTotal += res.Committed
		redone += res.Recovery.Redone
		undone += res.Recovery.Undone
		tornFixed += res.TornFixed
		if point == PointTransientWrite && res.Fired {
			if res.CrashedAt != "" {
				t.Errorf("seed %d: transient fault killed the migration workload: %s", seed, res.CrashedAt)
			}
			if res.Retries == 0 {
				t.Errorf("seed %d: transient fault fired but no migration batch was retried", seed)
			}
		}
	}
	for _, point := range Points {
		if point == PointPostCommit {
			continue // arms no fault by design; every iteration still recovers
		}
		if fired[point] == 0 {
			t.Errorf("scenario %s never fired its fault in %d iterations", point, iters)
		}
	}
	for _, point := range []Point{PointLogFlushCrash, PointPageWriteCrash, PointTornWrite, PointLogAppendCrash} {
		if stopped[point] == 0 {
			t.Errorf("scenario %s never interrupted a migration workload", point)
		}
	}
	// Migrations must have both survived commits (redo) and lost batches
	// (undo of the stub+copy) across the run.
	if committedTotal == 0 || redone == 0 || undone == 0 {
		t.Errorf("weak coverage: committed=%d redone=%d undone=%d", committedTotal, redone, undone)
	}
	t.Logf("%d iterations: committed=%d redone=%d undone=%d tornFixed=%d fired=%v",
		iters, committedTotal, redone, undone, tornFixed, fired)
}

// TestRunClusterIsDeterministic mirrors TestRunIsDeterministic for the
// migration workload: identical seeds must yield identical results.
func TestRunClusterIsDeterministic(t *testing.T) {
	for _, point := range Points {
		a, errA := RunCluster(Config{Seed: 9191, Point: point})
		b, errB := RunCluster(Config{Seed: 9191, Point: point})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", point, errA, errB)
		}
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Errorf("%s: same seed, different results:\n%+v\n%+v", point, a, b)
		}
	}
}
