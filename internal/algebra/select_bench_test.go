package algebra_test

import (
	"testing"

	"mood/internal/algebra"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/vehicledb"
)

// The Select benchmarks measure the satellite optimization of hoisting the
// per-row expr.Env allocation out of the predicate loop. PerRowEnv replays
// the seed behaviour (a fresh evaluator — two map allocations — per row);
// Hoisted is the shipped path where one RowEvaluator serves the whole
// extent.

func benchFixture(b *testing.B) (*algebra.Algebra, *algebra.Collection, expr.Expr) {
	b.Helper()
	db, _, err := vehicledb.Build(vehicledb.Config{
		Vehicles: 400, DriveTrains: 200, Engines: 200,
		Companies: 400, Employees: 20, Seed: 5,
	}, 2048)
	if err != nil {
		b.Fatal(err)
	}
	a := algebra.New(db.Cat)
	arg, err := a.Bind("Vehicle", "v")
	if err != nil {
		b.Fatal(err)
	}
	p := &expr.Cmp{
		Op: expr.OpGe,
		L:  expr.Path("v", "weight"),
		R:  &expr.Const{Val: object.NewInt(2000)},
	}
	return a, arg, p
}

func BenchmarkSelectPredicateHoisted(b *testing.B) {
	a, arg, p := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Select(arg, p, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectPredicatePerRowEnv(b *testing.B) {
	a, arg, p := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := &algebra.Collection{Kind: arg.Kind, Name: arg.Name, Class: arg.Class}
		for j := range arg.Rows {
			row := arg.Rows[j]
			ok, err := a.NewRowEvaluator().EvalBool(row, p)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				out.Rows = append(out.Rows, row)
			}
		}
	}
}
