// Package fault provides deterministic, seedable fault injection for the
// storage/WAL substrate. The paper delegates "backup and recovery of data"
// to the Exodus Storage Manager; our substitute claims ARIES-style recovery,
// and this package supplies the machinery to prove it: failure points that
// fire at the Nth occurrence of an operation, chosen from a seed, so every
// crash/recovery scenario the torture harness explores is replayable.
//
// A fault point is identified by an Op (page write, page read, log append,
// log flush). The I/O layers call Injector.Check at each such point; the
// injector counts occurrences and, when an armed rule matches, returns a
// Decision telling the layer how to fail:
//
//   - Transient: return ErrTransient once; a retry of the same operation
//     succeeds (the rule is consumed). Models a recoverable I/O error.
//   - Torn: persist only a prefix of the block, then behave as a crash.
//     Models a power failure mid-sector-train. The on-disk checksum no
//     longer matches, which recovery must detect and repair.
//   - Crash: fail the operation and every subsequent one. Models the
//     process dying at exactly this point; the caller's stack unwinds with
//     ErrCrash and the test harness then "reboots" (new buffer pool,
//     durable log prefix only) and runs recovery.
//
// After a Torn or Crash decision the injector latches into the crashed
// state: every later Check returns Crash regardless of op, so no I/O can
// sneak past the point of death.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Op names a fault point in the storage/WAL stack.
type Op string

// The fault points the substrate exposes.
const (
	OpPageRead  Op = "page.read"  // DiskSim.ReadPage
	OpPageWrite Op = "page.write" // DiskSim.WritePage (buffer-pool flush path)
	OpLogAppend Op = "log.append" // wal.Log.Update record append
	OpLogFlush  Op = "log.flush"  // wal.Log durability point (commit force, WAL-rule flush)
)

// Kind is the way an armed fault point fails.
type Kind uint8

// Fault kinds.
const (
	None      Kind = iota
	Transient      // one-shot recoverable I/O error
	Torn           // partial page write, then crash
	Crash          // hard crash: this and all later operations fail
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Torn:
		return "torn"
	case Crash:
		return "crash"
	}
	return "unknown"
}

// Sentinel errors injected at fault points. Layers wrap them with context;
// callers test with errors.Is.
var (
	// ErrCrash is returned by every operation at and after the crash point.
	ErrCrash = errors.New("fault: simulated crash")
	// ErrTransient is returned once by a transiently failing operation.
	ErrTransient = errors.New("fault: transient I/O error")
)

// Decision tells an I/O layer how to fail the current operation.
type Decision struct {
	Kind Kind
	// TornFrac, for Torn decisions, is the fraction (0,1) of the block that
	// reaches the disk before the crash.
	TornFrac float64
}

// Trip records one fired fault, for diagnostics and coverage accounting.
type Trip struct {
	Op   Op
	N    int64 // the occurrence count at which the fault fired
	Kind Kind
}

func (t Trip) String() string { return fmt.Sprintf("%s#%d:%s", t.Op, t.N, t.Kind) }

// rule is one armed fault: fire kind at the nth occurrence of op.
type rule struct {
	op    Op
	n     int64
	kind  Kind
	fired bool
}

// Injector is a deterministic fault plan. It is safe for concurrent use;
// the occurrence counters make its behaviour a pure function of the seed
// and the sequence of Check calls.
type Injector struct {
	mu      sync.Mutex
	seed    int64
	rng     *rand.Rand
	counts  map[Op]int64
	rules   []*rule
	crashed bool
	trips   []Trip
}

// New creates an injector with no armed faults. The seed only influences
// derived quantities (such as the torn-write fraction); the firing points
// themselves are armed explicitly with FailAt so a failing scenario can be
// reconstructed exactly.
func New(seed int64) *Injector {
	return &Injector{
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[Op]int64),
	}
}

// Seed returns the seed the injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// FailAt arms kind at the nth (1-based, counted from the injector's
// creation) occurrence of op. Multiple rules may be armed, on the same or
// different ops; each fires at most once.
func (in *Injector) FailAt(op Op, n int64, kind Kind) {
	if n < 1 || kind == None {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &rule{op: op, n: n, kind: kind})
}

// Check is called by an I/O layer at a fault point. It advances the op's
// occurrence counter and returns the decision for this operation. A nil
// injector never fires.
func (in *Injector) Check(op Op) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	if in.crashed {
		return Decision{Kind: Crash}
	}
	for _, r := range in.rules {
		if r.fired || r.op != op || in.counts[op] != r.n {
			continue
		}
		r.fired = true
		in.trips = append(in.trips, Trip{Op: op, N: r.n, Kind: r.kind})
		switch r.kind {
		case Torn:
			in.crashed = true
			// Persist between 1/8 and 7/8 of the block: always partial,
			// never empty, never complete.
			return Decision{Kind: Torn, TornFrac: 0.125 + 0.75*in.rng.Float64()}
		case Crash:
			in.crashed = true
			return Decision{Kind: Crash}
		case Transient:
			return Decision{Kind: Transient}
		}
	}
	return Decision{}
}

// Crashed reports whether a Torn or Crash fault has fired.
func (in *Injector) Crashed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Count returns how many times the op's fault point has been passed.
func (in *Injector) Count(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// Trips returns the faults that have fired, in firing order.
func (in *Injector) Trips() []Trip {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Trip, len(in.trips))
	copy(out, in.trips)
	return out
}
