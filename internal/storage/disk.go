// Package storage implements the storage-manager substrate MOOD relies on.
//
// The paper builds MOOD on the Exodus Storage Manager (ESM), which supplies
// storage management, concurrency-controlled data access, and recovery.
// This package is the Go substitute: a simulated disk with the physical cost
// parameters of the paper's Table 10, slotted pages, a buffer pool with
// clock replacement, ESM-style files, and an object store addressed by OIDs.
//
// One ESM property the paper calls out explicitly is preserved: an ESM file
// is stored as a B+ tree of pages, so the "sequential" scan of a file costs
// the same as random access unless the allocator happens to lay pages out
// contiguously. DiskSim therefore distinguishes sequential from random block
// accesses by physical adjacency, exactly as the SEQCOST/RNDCOST formulas of
// Section 5 do.
package storage

import (
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mood/internal/fault"
)

// DiskParams holds the physical disk parameters of the paper's Table 10.
// All times are in milliseconds; BlockSize is in bytes.
type DiskParams struct {
	BlockSize int     // B: block size in bytes
	BTT       float64 // btt: block transfer time
	EBT       float64 // ebt: effective block transfer time (sequential)
	R         float64 // r: average rotational latency
	S         float64 // s: average seek time
}

// DefaultDiskParams returns Salzberg-style parameters for a late-1980s disk,
// the era of the paper's cost references [Sal 88]. The paper itself does not
// print the values it used; these are configurable everywhere they are used.
func DefaultDiskParams() DiskParams {
	return DiskParams{
		BlockSize: 4096,
		BTT:       0.84, // ms to transfer one block after positioning
		EBT:       0.84, // ms per block when reading consecutively
		R:         8.3,  // ms average rotational latency
		S:         16.0, // ms average seek
	}
}

// RandomAccessTime returns the cost in milliseconds of one random block read:
// a seek, half a rotation, and one block transfer (s + r + btt).
func (p DiskParams) RandomAccessTime() float64 { return p.S + p.R + p.BTT }

// SequentialAccessTime returns the cost in milliseconds of reading b blocks
// laid out consecutively: one seek, one rotational latency, then b effective
// block transfers (s + r + b*ebt), the paper's SEQCOST(b).
func (p DiskParams) SequentialAccessTime(b int) float64 {
	if b <= 0 {
		return 0
	}
	return p.S + p.R + float64(b)*p.EBT
}

// microseconds converts a cost in milliseconds to the integer microsecond
// unit DiskSim accounts in. Integer accumulation is exact and commutative,
// so totals are free of floating-point drift and independent of the order
// concurrent workers interleave their accesses.
func microseconds(ms float64) int64 { return int64(math.Round(ms * 1000)) }

// PageID identifies a page within the simulated disk. Pages are allocated
// from a single flat address space; files map their logical page numbers to
// PageIDs through an allocation tree (see file.go).
type PageID uint32

// InvalidPageID is the zero PageID; page 0 is reserved for the disk header.
const InvalidPageID PageID = 0

// DiskStats aggregates the physical accesses performed against a DiskSim.
// Time is accounted internally in integer microseconds (TimeUs); TimeMs is
// derived from it at snapshot time, so rendered milliseconds carry no
// accumulated floating-point error.
type DiskStats struct {
	RandomReads      int64   // block reads preceded by a repositioning
	SequentialReads  int64   // block reads physically adjacent to the previous access
	RandomWrites     int64   // block writes preceded by a repositioning
	SequentialWrites int64   // block writes physically adjacent to the previous access
	TimeUs           int64   // accumulated simulated time in microseconds
	TimeMs           float64 // TimeUs expressed in milliseconds
}

// Reads returns the total number of block reads.
func (s DiskStats) Reads() int64 { return s.RandomReads + s.SequentialReads }

// Writes returns the total number of block writes.
func (s DiskStats) Writes() int64 { return s.RandomWrites + s.SequentialWrites }

// Accesses returns the total number of block accesses.
func (s DiskStats) Accesses() int64 { return s.Reads() + s.Writes() }

func (s DiskStats) String() string {
	return fmt.Sprintf("reads=%d (rnd %d, seq %d) writes=%d (rnd %d, seq %d) time=%.3fms",
		s.Reads(), s.RandomReads, s.SequentialReads,
		s.Writes(), s.RandomWrites, s.SequentialWrites, s.TimeMs)
}

// DiskSim is an in-memory simulated disk. Every page access is accounted
// against the physical parameters, so higher layers can compare measured
// costs with the analytic formulas of Sections 5 and 6.
//
// DiskSim is safe for concurrent use: page contents are guarded by an
// RWMutex (parallel readers proceed concurrently), and the access counters
// are atomics, so the simulated-time total is an order-independent integer
// sum — deterministic no matter how worker goroutines interleave. The
// sequential-vs-random classification of an access consults the last
// accessed page ID without synchronizing the pair of operations; under ESM
// layout accounting (every access random) — the mode all concurrent benches
// run in — the classification does not depend on it at all.
type DiskSim struct {
	mu     sync.RWMutex // guards pages, sums, good, free, next, fi, doublewrite
	params DiskParams
	pages  map[PageID][]byte
	next   PageID
	free   []PageID

	last atomic.Uint32 // last physically accessed page, for adjacency detection

	randomReads      atomic.Int64
	sequentialReads  atomic.Int64
	randomWrites     atomic.Int64
	sequentialWrites atomic.Int64
	timeUs           atomic.Int64

	randUs int64 // cost of one random access, µs
	ebtUs  int64 // cost of one adjacent block transfer, µs

	// esmLayout models ESM's file organization (a B+ tree of pages):
	// logically consecutive pages are not physically adjacent, so every
	// access is charged as random — the paper's "the sequential access
	// cost of a file is equal to its random access cost".
	esmLayout atomic.Bool

	// latencyNsPerSimMs, when nonzero, makes every access sleep that many
	// wall nanoseconds per simulated millisecond charged, after all locks
	// are released. It turns the simulated cost model into real waiting so
	// parallel workers can overlap I/O latency — the effect the morsel
	// benches measure — without changing any counter or simulated total.
	latencyNsPerSimMs atomic.Int64

	// fi, when set, is consulted on every page read/write so crash-recovery
	// tests can fail the Nth access, tear a write, or kill the disk.
	fi *fault.Injector
	// sums holds the CRC of each page's last complete write; a torn write
	// records the CRC of the write it failed to complete, so the mismatch
	// is detectable exactly as a page-checksum mismatch would be.
	sums map[PageID]uint32
	// good, when doublewrite is on, holds each page's last
	// checksum-consistent image; RepairPage restores it, modelling a
	// doublewrite buffer / mirrored write.
	good        map[PageID][]byte
	doublewrite bool
}

// NewDiskSim creates an empty simulated disk with the given parameters.
func NewDiskSim(params DiskParams) *DiskSim {
	if params.BlockSize <= 0 {
		params = DefaultDiskParams()
	}
	return &DiskSim{
		params: params,
		pages:  make(map[PageID][]byte),
		sums:   make(map[PageID]uint32),
		good:   make(map[PageID][]byte),
		next:   1, // page 0 reserved
		randUs: microseconds(params.RandomAccessTime()),
		ebtUs:  microseconds(params.EBT),
	}
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector.
// While attached, every ReadPage/WritePage consults it and may fail with
// fault.ErrTransient or fault.ErrCrash, or persist only part of a write.
func (d *DiskSim) SetFaultInjector(fi *fault.Injector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fi = fi
}

// SetDoublewrite enables retention of each page's last checksum-consistent
// image so torn pages can be repaired with RepairPage (the discipline real
// systems implement with a doublewrite buffer or full-page logging).
func (d *DiskSim) SetDoublewrite(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.doublewrite = on
}

// DoublewriteEnabled reports whether torn pages can be repaired from the
// retained good images (the read path's verify fallback consults it).
func (d *DiskSim) DoublewriteEnabled() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.doublewrite
}

// SetLatency makes every subsequent page access block the calling goroutine
// for perSimMs of wall time per simulated millisecond charged (zero turns
// emulation off, the default). The sleep happens after every lock is
// released, so concurrent workers overlap their waits exactly as they would
// overlap real disk I/O. Counters and simulated totals are unaffected.
func (d *DiskSim) SetLatency(perSimMs time.Duration) {
	d.latencyNsPerSimMs.Store(int64(perSimMs))
}

// Params returns the physical parameters of the disk.
func (d *DiskSim) Params() DiskParams { return d.params }

// PageSize returns the block size in bytes.
func (d *DiskSim) PageSize() int { return d.params.BlockSize }

// AllocPage reserves a fresh zeroed page and returns its ID. Freed pages are
// recycled first, which — as on a real allocator — gradually destroys
// physical adjacency for "sequential" files.
func (d *DiskSim) AllocPage() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var id PageID
	if n := len(d.free); n > 0 {
		id = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		id = d.next
		d.next++
	}
	buf := make([]byte, d.params.BlockSize)
	d.pages[id] = buf
	d.sums[id] = crc32.ChecksumIEEE(buf)
	if d.doublewrite {
		d.good[id] = make([]byte, d.params.BlockSize)
	}
	return id
}

// FreePage returns a page to the allocator. Accessing a freed page is an
// error until it is re-allocated.
func (d *DiskSim) FreePage(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.pages[id]; !ok {
		return fmt.Errorf("storage: free of unallocated page %d", id)
	}
	delete(d.pages, id)
	delete(d.sums, id)
	delete(d.good, id)
	d.free = append(d.free, id)
	return nil
}

// NumPages returns the number of currently allocated pages.
func (d *DiskSim) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// charge accounts one access of kind (read/write, adjacent or not) and
// returns the microseconds charged; the caller sleeps them out after
// releasing its locks if latency emulation is on.
func (d *DiskSim) charge(id PageID, write bool) int64 {
	var us int64
	if d.adjacent(id) {
		if write {
			d.sequentialWrites.Add(1)
		} else {
			d.sequentialReads.Add(1)
		}
		us = d.ebtUs
	} else {
		if write {
			d.randomWrites.Add(1)
		} else {
			d.randomReads.Add(1)
		}
		us = d.randUs
	}
	d.timeUs.Add(us)
	d.last.Store(uint32(id))
	return us
}

// emulate blocks for the wall-clock equivalent of us simulated microseconds
// when latency emulation is on. Never called with locks held.
func (d *DiskSim) emulate(us int64) {
	if ns := d.latencyNsPerSimMs.Load(); ns > 0 {
		time.Sleep(time.Duration(us * ns / 1000))
	}
}

// ReadPage copies the content of the page into buf, which must be exactly
// one block long, and charges the physical cost of the access.
func (d *DiskSim) ReadPage(id PageID, buf []byte) error {
	d.mu.RLock()
	src, ok := d.pages[id]
	if !ok {
		d.mu.RUnlock()
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if len(buf) != d.params.BlockSize {
		d.mu.RUnlock()
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), d.params.BlockSize)
	}
	switch d.fi.Check(fault.OpPageRead).Kind {
	case fault.Transient:
		d.mu.RUnlock()
		return fmt.Errorf("storage: read page %d: %w", id, fault.ErrTransient)
	case fault.Torn, fault.Crash:
		d.mu.RUnlock()
		return fmt.Errorf("storage: read page %d: %w", id, fault.ErrCrash)
	}
	copy(buf, src)
	d.mu.RUnlock()
	d.emulate(d.charge(id, false))
	return nil
}

// WritePage stores buf (exactly one block) as the new content of the page
// and charges the physical cost of the access.
func (d *DiskSim) WritePage(id PageID, buf []byte) error {
	if err := d.writePageLocked(id, buf); err != nil {
		return err
	}
	d.emulate(d.charge(id, true))
	return nil
}

func (d *DiskSim) writePageLocked(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dst, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if len(buf) != d.params.BlockSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), d.params.BlockSize)
	}
	switch dec := d.fi.Check(fault.OpPageWrite); dec.Kind {
	case fault.Transient:
		// Nothing reaches the platter; a retry will succeed.
		return fmt.Errorf("storage: write page %d: %w", id, fault.ErrTransient)
	case fault.Crash:
		// Power lost before the write started.
		return fmt.Errorf("storage: write page %d: %w", id, fault.ErrCrash)
	case fault.Torn:
		// Power lost mid-write: a prefix of the new image lands on top of
		// the old bytes, while the recorded checksum is that of the full
		// intended write — the page is detectably corrupt.
		n := int(dec.TornFrac * float64(d.params.BlockSize))
		if n < 1 {
			n = 1
		}
		if n >= d.params.BlockSize {
			n = d.params.BlockSize - 1
		}
		copy(dst[:n], buf[:n])
		d.sums[id] = crc32.ChecksumIEEE(buf)
		return fmt.Errorf("storage: torn write of page %d (%d/%d bytes): %w",
			id, n, d.params.BlockSize, fault.ErrCrash)
	}
	copy(dst, buf)
	d.sums[id] = crc32.ChecksumIEEE(buf)
	if d.doublewrite {
		g := d.good[id]
		if g == nil {
			g = make([]byte, d.params.BlockSize)
			d.good[id] = g
		}
		copy(g, buf)
	}
	return nil
}

// adjacent reports whether accessing id continues a physically sequential
// run.
func (d *DiskSim) adjacent(id PageID) bool {
	if d.esmLayout.Load() {
		return false
	}
	l := d.last.Load()
	return l != 0 && uint32(id) == l+1
}

// SetESMLayout toggles ESM file-layout accounting: when on, every page
// access costs a full random access regardless of adjacency.
func (d *DiskSim) SetESMLayout(on bool) {
	d.esmLayout.Store(on)
}

// VerifyPage checks the page's content against the checksum of its last
// complete write. A torn write leaves a mismatch, which this reports as an
// error naming the page.
func (d *DiskSim) VerifyPage(id PageID) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.verifyLocked(id)
}

func (d *DiskSim) verifyLocked(id PageID) error {
	buf, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: verify of unallocated page %d", id)
	}
	if got := crc32.ChecksumIEEE(buf); got != d.sums[id] {
		return fmt.Errorf("storage: page %d checksum mismatch (torn write): got %08x want %08x",
			id, got, d.sums[id])
	}
	return nil
}

// CorruptPages scans every allocated page and returns the IDs whose content
// fails checksum verification, sorted ascending. A crash-recovery pass runs
// this first to find torn pages.
func (d *DiskSim) CorruptPages() []PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []PageID
	for id := range d.pages {
		if d.verifyLocked(id) != nil {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RepairPage restores the page's last checksum-consistent image from the
// doublewrite area (SetDoublewrite must have been on when the page was last
// written completely). Recovery then rolls the page forward from the log.
func (d *DiskSim) RepairPage(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("storage: repair of unallocated page %d", id)
	}
	g, ok := d.good[id]
	if !ok {
		return fmt.Errorf("storage: no doublewrite image for page %d", id)
	}
	copy(buf, g)
	d.sums[id] = crc32.ChecksumIEEE(buf)
	return nil
}

// StatsScope measures the disk activity of one region of code: the counter
// snapshot taken when the scope opened, subtracted from the live counters on
// Delta. The executor opens one scope per physical operator so EXPLAIN
// ANALYZE can attribute simulated page reads operator by operator.
type StatsScope struct {
	d     *DiskSim
	start DiskStats
}

// Scope opens a stats scope at the current counter values.
func (d *DiskSim) Scope() *StatsScope {
	return &StatsScope{d: d, start: d.Stats()}
}

// Delta returns the disk activity since the scope opened.
func (s *StatsScope) Delta() DiskStats {
	cur := s.d.Stats()
	out := DiskStats{
		RandomReads:      cur.RandomReads - s.start.RandomReads,
		SequentialReads:  cur.SequentialReads - s.start.SequentialReads,
		RandomWrites:     cur.RandomWrites - s.start.RandomWrites,
		SequentialWrites: cur.SequentialWrites - s.start.SequentialWrites,
		TimeUs:           cur.TimeUs - s.start.TimeUs,
	}
	out.TimeMs = float64(out.TimeUs) / 1000
	return out
}

// Stats returns a snapshot of the accumulated access statistics.
func (d *DiskSim) Stats() DiskStats {
	s := DiskStats{
		RandomReads:      d.randomReads.Load(),
		SequentialReads:  d.sequentialReads.Load(),
		RandomWrites:     d.randomWrites.Load(),
		SequentialWrites: d.sequentialWrites.Load(),
		TimeUs:           d.timeUs.Load(),
	}
	s.TimeMs = float64(s.TimeUs) / 1000
	return s
}

// ResetStats zeroes the access counters (the page contents are untouched).
func (d *DiskSim) ResetStats() {
	d.randomReads.Store(0)
	d.sequentialReads.Store(0)
	d.randomWrites.Store(0)
	d.sequentialWrites.Store(0)
	d.timeUs.Store(0)
	d.last.Store(0)
}
