package expr

import (
	"strings"

	"mood/internal/object"
	"mood/internal/storage"
)

// This file lowers expression trees into fused Go closures — the
// query-fragment analogue of the paper's Function Manager compilation step:
// a predicate is "compiled once" into a directly callable function and then
// resolved by signature at execution time (funcmgr.QueryRegistry). The
// closures call the same semantic cores as the tree interpreter (applyCmp,
// applyArith, applyNeg, projectField), so null propagation, run-time type
// promotion, short-circuiting, and error values are identical by
// construction; the fuzzer in fuzz_test.go holds the two paths equal on
// random trees and rows.
//
// Two shapes are produced:
//
//   - Fn/BoolFn close over an *Env, a drop-in for tree evaluation anywhere
//     an environment is already bound. Every node kind lowers; a node the
//     compiler does not understand (method calls, future extensions) falls
//     back to its own Eval, and the returned flag reports whether the whole
//     tree lowered ("fully compiled").
//   - PredFn is the self-mode specialization for single-variable predicates:
//     the only free variable is passed directly, so evaluating a row needs
//     no environment maps at all — the form the vectorized scan operators
//     use per batch element. Lowering is all-or-nothing: any node outside
//     the compilable subset (another variable, a method call) rejects the
//     whole tree.

// Signature renders e for compiled-fragment keying: the String rendering
// plus the run-time kinds of every literal, so constants of different types
// that print alike (Integer 1, LongInteger 1) never share a fragment.
func Signature(e Expr) string {
	var sb strings.Builder
	sb.WriteString(e.String())
	sb.WriteByte(0)
	appendConstKinds(e, &sb)
	return sb.String()
}

func appendConstKinds(e Expr, sb *strings.Builder) {
	switch n := e.(type) {
	case *Const:
		sb.WriteString(n.Val.Kind.String())
		sb.WriteByte(';')
	case *Field:
		appendConstKinds(n.Base, sb)
	case *Call:
		appendConstKinds(n.Base, sb)
		for _, a := range n.Args {
			appendConstKinds(a, sb)
		}
	case *Cmp:
		appendConstKinds(n.L, sb)
		appendConstKinds(n.R, sb)
	case *Arith:
		appendConstKinds(n.L, sb)
		appendConstKinds(n.R, sb)
	case *Logic:
		appendConstKinds(n.L, sb)
		appendConstKinds(n.R, sb)
	case *Between:
		appendConstKinds(n.E, sb)
		appendConstKinds(n.Lo, sb)
		appendConstKinds(n.Hi, sb)
	case *Not:
		appendConstKinds(n.E, sb)
	case *Neg:
		appendConstKinds(n.E, sb)
	}
}

// Fn is a compiled expression, evaluated against a bound environment.
type Fn func(env *Env) (object.Value, error)

// BoolFn is a compiled predicate: Fn with the result coerced to bool.
type BoolFn func(env *Env) (bool, error)

// PredFn is a self-mode compiled single-variable predicate: the range
// variable's value and OID are passed directly instead of through Env maps.
// self is passed by pointer — Value is a 120-byte struct and PredFn runs
// once per scanned object — and is never written through.
type PredFn func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (bool, error)

// Compile lowers e into a closure. The returned flag is true when every
// node lowered; false means at least one subtree runs through the
// interpreter (the closure is still always valid and semantically exact).
func Compile(e Expr) (Fn, bool) {
	switch n := e.(type) {
	case *Const:
		v := n.Val
		return func(*Env) (object.Value, error) { return v, nil }, true

	case *Var:
		return func(env *Env) (object.Value, error) { return n.Eval(env) }, true

	case *Field:
		base, ok := Compile(n.Base)
		return func(env *Env) (object.Value, error) {
			b, err := base(env)
			if err != nil {
				return object.Null, err
			}
			var resolve object.Resolver
			if env != nil {
				resolve = env.Resolve
			}
			return projectField(&b, n.Name, resolve, n)
		}, ok

	case *Cmp:
		lf, lok := Compile(n.L)
		rf, rok := Compile(n.R)
		op := n.Op
		return func(env *Env) (object.Value, error) {
			l, err := lf(env)
			if err != nil {
				return object.Null, err
			}
			r, err := rf(env)
			if err != nil {
				return object.Null, err
			}
			return applyCmp(op, &l, &r)
		}, lok && rok

	case *Between:
		return Compile(n.desugar())

	case *Logic:
		lf, lok := Compile(n.L)
		rf, rok := Compile(n.R)
		op := n.Op
		return func(env *Env) (object.Value, error) {
			lv, err := lf(env)
			if err != nil {
				return object.Null, err
			}
			lb := lv.Bool()
			if op == OpAnd && !lb {
				return object.NewBool(false), nil
			}
			if op == OpOr && lb {
				return object.NewBool(true), nil
			}
			rv, err := rf(env)
			if err != nil {
				return object.Null, err
			}
			return object.NewBool(rv.Bool()), nil
		}, lok && rok

	case *Not:
		f, ok := Compile(n.E)
		return func(env *Env) (object.Value, error) {
			v, err := f(env)
			if err != nil {
				return object.Null, err
			}
			return object.NewBool(!v.Bool()), nil
		}, ok

	case *Arith:
		lf, lok := Compile(n.L)
		rf, rok := Compile(n.R)
		op := n.Op
		return func(env *Env) (object.Value, error) {
			l, err := lf(env)
			if err != nil {
				return object.Null, err
			}
			r, err := rf(env)
			if err != nil {
				return object.Null, err
			}
			return applyArith(op, &l, &r)
		}, lok && rok

	case *Neg:
		f, ok := Compile(n.E)
		return func(env *Env) (object.Value, error) {
			v, err := f(env)
			if err != nil {
				return object.Null, err
			}
			return applyNeg(&v)
		}, ok
	}
	// Method calls and unknown node kinds interpret; the closure is still
	// usable, just not "fully compiled".
	return e.Eval, false
}

// CompileBool lowers a predicate, coercing the result to bool exactly as
// EvalBool does.
func CompileBool(e Expr) (BoolFn, bool) {
	fn, ok := Compile(e)
	return func(env *Env) (bool, error) {
		v, err := fn(env)
		if err != nil {
			return false, err
		}
		return v.Bool(), nil
	}, ok
}

// selfFn is the self-mode evaluation shape threaded through CompilePredicate;
// like PredFn, self is a read-only pointer.
type selfFn func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (object.Value, error)

// CompilePredicate lowers a predicate whose only free variable is varName
// into the self-mode form. ok is false — and the PredFn nil — when the tree
// references any other variable, invokes a method, or contains a node
// outside the compilable subset; callers then fall back to the environment
// path.
func CompilePredicate(e Expr, varName string) (PredFn, bool) {
	if pf, ok := compileSelfPred(e, varName); ok {
		return pf, true
	}
	fn, ok := compileSelf(e, varName)
	if !ok {
		return nil, false
	}
	return func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (bool, error) {
		v, err := fn(self, selfOID, resolve)
		if err != nil {
			return false, err
		}
		return v.Bool(), nil
	}, true
}

// compileSelfPred lowers the hottest scan-predicate shape — a single
// comparison between a field of self and a constant, in either operand
// order — into one closure that never constructs an intermediate Value:
// pointer field projection, then a straight-to-bool comparison. Evaluation
// order, null handling, type promotion and errors are exactly the general
// path's (projectFieldRef and applyCmpBool are the same semantic cores),
// the fuzzer holds the two equal on random rows. Any other tree reports
// ok=false and takes the generic compileSelf route.
func compileSelfPred(e Expr, varName string) (PredFn, bool) {
	n, ok := e.(*Cmp)
	if !ok {
		return nil, false
	}
	fieldOf := func(x Expr) *Field {
		f, ok := x.(*Field)
		if !ok {
			return nil
		}
		if v, ok := f.Base.(*Var); !ok || v.Name != varName {
			return nil
		}
		return f
	}
	if fld, c := fieldOf(n.L), asConst(n.R); fld != nil && c != nil {
		cv, op := c.Val, n.Op
		return func(self *object.Value, _ storage.OID, resolve object.Resolver) (bool, error) {
			l, err := projectFieldRef(self, fld.Name, resolve, fld)
			if err != nil {
				return false, err
			}
			return applyCmpBool(op, l, &cv)
		}, true
	}
	if c, fld := asConst(n.L), fieldOf(n.R); c != nil && fld != nil {
		cv, op := c.Val, n.Op
		return func(self *object.Value, _ storage.OID, resolve object.Resolver) (bool, error) {
			r, err := projectFieldRef(self, fld.Name, resolve, fld)
			if err != nil {
				return false, err
			}
			return applyCmpBool(op, &cv, r)
		}, true
	}
	return nil, false
}

func asConst(e Expr) *Const {
	c, ok := e.(*Const)
	if !ok {
		return nil
	}
	return c
}

func compileSelf(e Expr, varName string) (selfFn, bool) {
	switch n := e.(type) {
	case *Const:
		v := n.Val
		return func(*object.Value, storage.OID, object.Resolver) (object.Value, error) {
			return v, nil
		}, true

	case *Var:
		if n.Name != varName {
			return nil, false
		}
		return func(self *object.Value, _ storage.OID, _ object.Resolver) (object.Value, error) {
			return *self, nil
		}, true

	case *Field:
		// Field-over-self (c.attr) is the hot shape of every scan
		// predicate: project straight off the self pointer instead of
		// materializing the 120-byte Var result first. projectField never
		// writes through its base.
		if v, isVar := n.Base.(*Var); isVar {
			if v.Name != varName {
				return nil, false
			}
			return func(self *object.Value, _ storage.OID, resolve object.Resolver) (object.Value, error) {
				return projectField(self, n.Name, resolve, n)
			}, true
		}
		base, ok := compileSelf(n.Base, varName)
		if !ok {
			return nil, false
		}
		return func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (object.Value, error) {
			b, err := base(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			return projectField(&b, n.Name, resolve, n)
		}, true

	case *Cmp:
		lf, lok := compileSelf(n.L, varName)
		rf, rok := compileSelf(n.R, varName)
		if !lok || !rok {
			return nil, false
		}
		op := n.Op
		return func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (object.Value, error) {
			l, err := lf(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			r, err := rf(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			return applyCmp(op, &l, &r)
		}, true

	case *Between:
		return compileSelf(n.desugar(), varName)

	case *Logic:
		lf, lok := compileSelf(n.L, varName)
		rf, rok := compileSelf(n.R, varName)
		if !lok || !rok {
			return nil, false
		}
		op := n.Op
		return func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (object.Value, error) {
			lv, err := lf(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			lb := lv.Bool()
			if op == OpAnd && !lb {
				return object.NewBool(false), nil
			}
			if op == OpOr && lb {
				return object.NewBool(true), nil
			}
			rv, err := rf(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			return object.NewBool(rv.Bool()), nil
		}, true

	case *Not:
		f, ok := compileSelf(n.E, varName)
		if !ok {
			return nil, false
		}
		return func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (object.Value, error) {
			v, err := f(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			return object.NewBool(!v.Bool()), nil
		}, true

	case *Arith:
		lf, lok := compileSelf(n.L, varName)
		rf, rok := compileSelf(n.R, varName)
		if !lok || !rok {
			return nil, false
		}
		op := n.Op
		return func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (object.Value, error) {
			l, err := lf(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			r, err := rf(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			return applyArith(op, &l, &r)
		}, true

	case *Neg:
		f, ok := compileSelf(n.E, varName)
		if !ok {
			return nil, false
		}
		return func(self *object.Value, selfOID storage.OID, resolve object.Resolver) (object.Value, error) {
			v, err := f(self, selfOID, resolve)
			if err != nil {
				return object.Null, err
			}
			return applyNeg(&v)
		}, true
	}
	return nil, false
}
