// Package sql implements MOODSQL, the SQL-like object-oriented query
// language of Section 3: the data definition language (CREATE CLASS with
// TUPLE attributes, INHERITS FROM, METHODS), object creation
// (new Class <...>), and SELECT queries with path expressions, the EVERY /
// minus FROM-clause operators, GROUP BY/HAVING and ORDER BY. The parser
// produces expression trees shared with the run-time interpreter, so the
// optimizer analyzes exactly what the executor runs.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokPunct // single/multi-char punctuation: ( ) , . ; : < > = <> <= >= + - * / % -
)

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep their case
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "EVERY": true,
	"AND": true, "OR": true, "NOT": true, "BETWEEN": true, "CREATE": true,
	"CLASS": true, "TYPE": true, "INDEX": true, "INHERITS": true,
	"TUPLE": true, "METHODS": true, "DROP": true, "NEW": true, "UPDATE": true,
	"SET": true, "DELETE": true, "ON": true, "USING": true, "UNIQUE": true,
	"BTREE": true, "HASH": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "TRUE": true, "FALSE": true, "NULL": true,
	"LIST": true, "REFERENCE": true, "AS": true, "IS": true, "DISTINCT": true,
	"EXPLAIN": true, "ANALYZE": true, "JOIN": true,
}

// Lex tokenizes a MOODSQL statement. Keywords are case-insensitive; string
// literals use single quotes with ” as the escape.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // comment to end of line
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case unicode.IsDigit(rune(c)):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (!seenDot && input[i] == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1])))) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			// Exponent.
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && unicode.IsDigit(rune(input[j])) {
					i = j
					for i < n && unicode.IsDigit(rune(input[i])) {
						i++
					}
				}
			}
			toks = append(toks, Token{TokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		case c == '"':
			// Double-quoted strings accepted too (MoodView emits them in
			// new Employee <"Budak Arpinar", ...>).
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		case c == '<':
			if i+1 < n && input[i+1] == '>' {
				toks = append(toks, Token{TokPunct, "<>", i})
				i += 2
			} else if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokPunct, "<=", i})
				i += 2
			} else {
				toks = append(toks, Token{TokPunct, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokPunct, ">=", i})
				i += 2
			} else {
				toks = append(toks, Token{TokPunct, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{TokPunct, "<>", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		case strings.ContainsRune("(),.;:=+-*/%", rune(c)):
			toks = append(toks, Token{TokPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}
