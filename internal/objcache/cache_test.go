package objcache

import (
	"fmt"
	"sync"
	"testing"

	"mood/internal/object"
	"mood/internal/storage"
)

func oidN(n int) storage.OID {
	return storage.MakeOID(1, storage.PageID(1+n/16), storage.SlotID(n%16))
}

func put(t *testing.T, c *Cache, oid storage.OID, s string, size int) {
	t.Helper()
	tok := c.BeginFetch(oid)
	if !c.Put(tok, oid, object.NewString(s), "C", size) {
		t.Fatalf("Put(%s) rejected", oid)
	}
}

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	oid := oidN(1)
	if _, _, ok := c.Get(oid); ok {
		t.Fatal("hit on empty cache")
	}
	put(t, c, oid, "hello", 32)
	v, class, ok := c.Get(oid)
	if !ok || v.Str != "hello" || class != "C" {
		t.Fatalf("Get = (%v, %q, %v), want (hello, C, true)", v, class, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", hr)
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New(1 << 20)
	oid := oidN(1)
	tok := c.BeginFetch(oid)
	// A writer invalidates between the reader's store read and its Put.
	c.Invalidate(oid)
	if c.Put(tok, oid, object.NewString("stale"), "C", 16) {
		t.Fatal("Put with stale token succeeded")
	}
	if _, _, ok := c.Get(oid); ok {
		t.Fatal("stale value was cached")
	}
	// A fresh token after the invalidation works.
	put(t, c, oid, "fresh", 16)
	if v, _, ok := c.Get(oid); !ok || v.Str != "fresh" {
		t.Fatalf("Get after refetch = (%v, %v)", v, ok)
	}
}

func TestInvalidateRemoves(t *testing.T) {
	c := New(1 << 20)
	oid := oidN(1)
	put(t, c, oid, "v1", 16)
	c.Invalidate(oid)
	if _, _, ok := c.Get(oid); ok {
		t.Fatal("invalidated entry still served")
	}
}

func TestReset(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 100; i++ {
		put(t, c, oidN(i), fmt.Sprint(i), 16)
	}
	tok := c.BeginFetch(oidN(0))
	c.Reset()
	if st := c.Snapshot(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after Reset: entries=%d bytes=%d", st.Entries, st.Bytes)
	}
	if c.Put(tok, oidN(0), object.NewString("stale"), "C", 16) {
		t.Fatal("pre-Reset token accepted after Reset")
	}
}

func TestBudgetEviction(t *testing.T) {
	// Tiny budget: each entry charges 16+overhead bytes; per-shard budget is
	// total/numShards, so 64KiB total holds plenty but 4KiB holds only a few
	// per shard.
	c := New(4 << 10)
	for i := 0; i < 1000; i++ {
		tok := c.BeginFetch(oidN(i))
		c.Put(tok, oidN(i), object.NewString("x"), "C", 16)
	}
	st := c.Snapshot()
	if st.Bytes > st.Budget {
		t.Fatalf("bytes=%d over budget=%d", st.Bytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	perShard := st.Budget / numShards
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if sh.bytes > perShard {
			t.Errorf("shard %d: bytes=%d over per-shard budget %d", i, sh.bytes, perShard)
		}
		sh.mu.Unlock()
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	c := New(1 << 10) // 64 bytes per shard: any realistic entry exceeds it
	tok := c.BeginFetch(oidN(1))
	if c.Put(tok, oidN(1), object.NewString("big"), "C", 4096) {
		t.Fatal("oversize entry was cached")
	}
	if st := c.Snapshot(); st.Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestScanResistance(t *testing.T) {
	// Re-referenced (protected) entries must survive a one-touch scan that
	// is large enough to churn the probation queue.
	c := New(32 << 10)
	hot := make([]storage.OID, 8)
	for i := range hot {
		hot[i] = oidN(i)
		put(t, c, hot[i], "hot", 64)
	}
	for _, oid := range hot { // promote to protected
		if _, _, ok := c.Get(oid); !ok {
			t.Fatalf("warming get of %s missed", oid)
		}
	}
	for i := 100; i < 2000; i++ { // cold scan
		tok := c.BeginFetch(oidN(i))
		c.Put(tok, oidN(i), object.NewString("cold"), "C", 64)
	}
	survived := 0
	for _, oid := range hot {
		if _, _, ok := c.Get(oid); ok {
			survived++
		}
	}
	if survived < len(hot)/2 {
		t.Fatalf("only %d/%d hot entries survived the scan", survived, len(hot))
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				oid := oidN(i % 64)
				switch (i + w) % 3 {
				case 0:
					tok := c.BeginFetch(oid)
					c.Put(tok, oid, object.NewString("v"), "C", 32)
				case 1:
					c.Get(oid)
				default:
					c.Invalidate(oid)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Snapshot()
	if st.Bytes < 0 || st.Bytes > st.Budget {
		t.Fatalf("bytes accounting off: %+v", st)
	}
}
