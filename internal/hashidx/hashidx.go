// Package hashidx implements an extendible hash index over the buffer pool:
// the "hash indexing supported through the Exodus Storage Manager" that the
// IndSel algebra operator uses for equality predicates. Keys are arbitrary
// byte strings hashed with FNV-64; values are object identifiers. Duplicate
// keys are allowed. Buckets are disk pages; the directory doubles as buckets
// split, and lookups cost exactly one page access plus overflow hops, which
// is what makes hash indexes the cheapest access path for "=" predicates in
// the optimizer's §8.1 index-selection inequality.
package hashidx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/fnv"

	"mood/internal/storage"
)

// Bucket page layout (after the common 16-byte page header):
//
//	16..17  localDepth (u8)
//	18..20  nentries   (u16)
//	20..    entries: hash(u64) ++ keyLen(u16) ++ key ++ oid(u64)
//
// Overflow buckets chain through the page header's NextPage link; they are
// used only when a bucket full of identical keys cannot split further.
const (
	offLocalDepth = 16
	offNEntries   = 18
	bucketStart   = 20
)

// ErrNotFound is returned by Delete when the pair is absent.
var ErrNotFound = errors.New("hashidx: entry not found")

// Index is an extendible hash index.
type Index struct {
	bp        *storage.BufferPool
	dir       []storage.PageID // directory of bucket pages, len == 1<<globalDepth
	global    uint8
	entries   int
	maxInline int // max key bytes storable
}

// New creates an empty index with a one-bucket directory.
func New(bp *storage.BufferPool) (*Index, error) {
	idx := &Index{bp: bp, maxInline: bp.Disk().PageSize() / 4}
	pg, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	initBucket(pg, 0)
	idx.dir = []storage.PageID{pg.ID}
	if err := bp.Unpin(pg.ID, true); err != nil {
		return nil, err
	}
	return idx, nil
}

func initBucket(pg *storage.Page, depth uint8) {
	b := pg.Bytes()
	for i := range b {
		b[i] = 0
	}
	b[offLocalDepth] = depth
}

func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}

// Len returns the number of entries.
func (ix *Index) Len() int { return ix.entries }

// GlobalDepth returns the directory depth (directory size is 1<<depth).
func (ix *Index) GlobalDepth() int { return int(ix.global) }

// DirSize returns the number of directory slots.
func (ix *Index) DirSize() int { return len(ix.dir) }

func (ix *Index) bucketFor(h uint64) storage.PageID {
	return ix.dir[h&((1<<ix.global)-1)]
}

type entry struct {
	hash uint64
	key  []byte
	oid  storage.OID
}

func readEntries(pg *storage.Page) []entry {
	b := pg.Bytes()
	n := int(binary.LittleEndian.Uint16(b[offNEntries:]))
	out := make([]entry, 0, n)
	off := bucketStart
	for i := 0; i < n; i++ {
		h := binary.LittleEndian.Uint64(b[off:])
		kl := int(binary.LittleEndian.Uint16(b[off+8:]))
		key := make([]byte, kl)
		copy(key, b[off+10:off+10+kl])
		oid := storage.OID(binary.LittleEndian.Uint64(b[off+10+kl:]))
		out = append(out, entry{h, key, oid})
		off += 10 + kl + 8
	}
	return out
}

// writeEntries rewrites the bucket's entry area; it reports false if the
// entries do not fit.
func writeEntries(pg *storage.Page, depth uint8, entries []entry) bool {
	b := pg.Bytes()
	off := bucketStart
	for _, e := range entries {
		need := 10 + len(e.key) + 8
		if off+need > len(b) {
			return false
		}
		binary.LittleEndian.PutUint64(b[off:], e.hash)
		binary.LittleEndian.PutUint16(b[off+8:], uint16(len(e.key)))
		copy(b[off+10:], e.key)
		binary.LittleEndian.PutUint64(b[off+10+len(e.key):], uint64(e.oid))
		off += need
	}
	b[offLocalDepth] = depth
	binary.LittleEndian.PutUint16(b[offNEntries:], uint16(len(entries)))
	return true
}

// Insert adds (key, oid). Duplicates are allowed.
func (ix *Index) Insert(key []byte, oid storage.OID) error {
	if len(key) > ix.maxInline {
		return errors.New("hashidx: key too large")
	}
	h := hashKey(key)
	for {
		pid := ix.bucketFor(h)
		pg, err := ix.bp.Fetch(pid)
		if err != nil {
			return err
		}
		depth := pg.Bytes()[offLocalDepth]
		entries := readEntries(pg)
		entries = append(entries, entry{h, append([]byte(nil), key...), oid})
		if writeEntries(pg, depth, entries) {
			ix.entries++
			return ix.bp.Unpin(pid, true)
		}
		// Bucket full: split (or chain into overflow when all hashes share
		// the low bits — pathological but possible with many duplicates).
		if depth == 63 || allSameLowBits(entries, depth+1) {
			// Degenerate: spill into an overflow page chained to the bucket.
			err := ix.insertOverflow(pg, entry{h, append([]byte(nil), key...), oid})
			if uerr := ix.bp.Unpin(pid, true); uerr != nil && err == nil {
				err = uerr
			}
			if err == nil {
				ix.entries++
			}
			return err
		}
		if err := ix.splitBucket(pid, pg); err != nil {
			ix.bp.Unpin(pid, true)
			return err
		}
		if err := ix.bp.Unpin(pid, true); err != nil {
			return err
		}
		// Retry the insert against the refreshed directory.
	}
}

func allSameLowBits(entries []entry, bits uint8) bool {
	if len(entries) == 0 {
		return false
	}
	mask := uint64(1<<bits) - 1
	first := entries[0].hash & mask
	for _, e := range entries[1:] {
		if e.hash&mask != first {
			return false
		}
	}
	return true
}

// splitBucket splits the bucket at pid (pinned as pg), doubling the
// directory if needed. The entry that failed to fit is NOT in the bucket;
// callers retry after the split.
func (ix *Index) splitBucket(pid storage.PageID, pg *storage.Page) error {
	depth := pg.Bytes()[offLocalDepth]
	entries := readEntries(pg)
	if depth == ix.global {
		// Double the directory.
		nd := make([]storage.PageID, len(ix.dir)*2)
		copy(nd, ix.dir)
		copy(nd[len(ix.dir):], ix.dir)
		ix.dir = nd
		ix.global++
	}
	sib, err := ix.bp.NewPage()
	if err != nil {
		return err
	}
	initBucket(sib, depth+1)
	newBit := uint64(1) << depth
	var keep, move []entry
	for _, e := range entries {
		if e.hash&newBit != 0 {
			move = append(move, e)
		} else {
			keep = append(keep, e)
		}
	}
	if !writeEntries(pg, depth+1, keep) || !writeEntries(sib, depth+1, move) {
		return errors.New("hashidx: split produced oversized bucket")
	}
	// Redirect directory slots whose (depth+1) low bits select the sibling.
	mask := (uint64(1) << (depth + 1)) - 1
	for i := range ix.dir {
		if ix.dir[i] == pid && uint64(i)&mask&newBit != 0 {
			ix.dir[i] = sib.ID
		}
	}
	return ix.bp.Unpin(sib.ID, true)
}

// insertOverflow appends the entry to the bucket's overflow chain.
func (ix *Index) insertOverflow(bucket *storage.Page, e entry) error {
	pid := bucket.NextPage()
	prevID := bucket.ID
	prevIsBucket := true
	for pid != 0 {
		pg, err := ix.bp.Fetch(pid)
		if err != nil {
			return err
		}
		entries := readEntries(pg)
		entries = append(entries, e)
		if writeEntries(pg, pg.Bytes()[offLocalDepth], entries) {
			return ix.bp.Unpin(pid, true)
		}
		next := pg.NextPage()
		if err := ix.bp.Unpin(pid, false); err != nil {
			return err
		}
		prevID, prevIsBucket = pid, false
		pid = next
	}
	npg, err := ix.bp.NewPage()
	if err != nil {
		return err
	}
	initBucket(npg, 0)
	if !writeEntries(npg, 0, []entry{e}) {
		ix.bp.Unpin(npg.ID, true)
		return errors.New("hashidx: entry larger than a page")
	}
	if prevIsBucket {
		bucket.SetNextPage(npg.ID)
	} else {
		pp, err := ix.bp.Fetch(prevID)
		if err != nil {
			ix.bp.Unpin(npg.ID, true)
			return err
		}
		pp.SetNextPage(npg.ID)
		if err := ix.bp.Unpin(prevID, true); err != nil {
			ix.bp.Unpin(npg.ID, true)
			return err
		}
	}
	return ix.bp.Unpin(npg.ID, true)
}

// Search returns every OID stored under key.
func (ix *Index) Search(key []byte) ([]storage.OID, error) {
	h := hashKey(key)
	var out []storage.OID
	pid := ix.bucketFor(h)
	for pid != 0 {
		pg, err := ix.bp.Fetch(pid)
		if err != nil {
			return nil, err
		}
		for _, e := range readEntries(pg) {
			if e.hash == h && bytes.Equal(e.key, key) {
				out = append(out, e.oid)
			}
		}
		next := pg.NextPage()
		if err := ix.bp.Unpin(pid, false); err != nil {
			return nil, err
		}
		pid = next
	}
	return out, nil
}

// Delete removes one (key, oid) pair.
func (ix *Index) Delete(key []byte, oid storage.OID) error {
	h := hashKey(key)
	pid := ix.bucketFor(h)
	for pid != 0 {
		pg, err := ix.bp.Fetch(pid)
		if err != nil {
			return err
		}
		entries := readEntries(pg)
		for i, e := range entries {
			if e.hash == h && bytes.Equal(e.key, key) && e.oid == oid {
				entries = append(entries[:i], entries[i+1:]...)
				writeEntries(pg, pg.Bytes()[offLocalDepth], entries)
				ix.entries--
				return ix.bp.Unpin(pid, true)
			}
		}
		next := pg.NextPage()
		if err := ix.bp.Unpin(pid, false); err != nil {
			return err
		}
		pid = next
	}
	return ErrNotFound
}
