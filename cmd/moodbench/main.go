// Command moodbench regenerates every table and figure of the paper:
//
//	moodbench                 # everything, at the default 1/10 scale
//	moodbench -scale 1.0      # the paper's full Table 13 cardinalities
//	moodbench -only table16   # one artifact
//	moodbench -list           # list artifact names
//
// Artifacts: table1, table2, tables3to7, table8, table9, table10,
// tables11and12, tables13to15, table16, table17, example81, example82,
// figure71, figure72, joinsweep, pathorder, selectivity, indexrule,
// parallel, cache, vector, shard, cluster, commit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"mood/internal/experiments"
)

type artifact struct {
	name string
	desc string
	run  func(io.Writer, *experiments.Env) error
}

func artifacts() []artifact {
	return []artifact{
		{"table1", "Select operator return types", experiments.Table1},
		{"table2", "Join operator return-type matrix", experiments.Table2},
		{"tables3to7", "DupElim/set-op/conversion return types", func(w io.Writer, _ *experiments.Env) error {
			experiments.Tables3to7(w)
			return nil
		}},
		{"table8", "cost model parameters (measured)", func(w io.Writer, e *experiments.Env) error {
			experiments.Table8(w, e)
			return nil
		}},
		{"table9", "B+-tree parameters", experiments.Table9},
		{"table10", "physical disk parameters", func(w io.Writer, e *experiments.Env) error {
			experiments.Table10(w, e)
			return nil
		}},
		{"tables11and12", "ImmSelInfo / PathSelInfo dictionaries", experiments.Tables11and12},
		{"tables13to15", "example database statistics", func(w io.Writer, e *experiments.Env) error {
			experiments.Tables13to15(w, e)
			return nil
		}},
		{"table16", "Example 8.1 PathSelInfo (paper anchors)", experiments.Table16},
		{"table17", "Example 8.2 initial estimations", experiments.Table17},
		{"example81", "Example 8.1 access plan", experiments.Example81Plan},
		{"example82", "Example 8.2 access plan", experiments.Example82Plan},
		{"figure71", "clause execution order", experiments.Figure71},
		{"figure72", "WHERE-clause operator order", experiments.Figure72},
		{"joinsweep", "join-method crossover, measured vs predicted", experiments.JoinMethodSweep},
		{"pathorder", "Algorithm 8.1 ordering benefit", experiments.PathOrderingSweep},
		{"selectivity", "estimated vs actual path selectivity", experiments.SelectivityAccuracy},
		{"indexrule", "8.1 index-selection rule sweep", experiments.IndexSelectionSweep},
		{"parallel", "morsel-driven exchange scaling, workers=1/2/4/8", experiments.ParallelScaling},
		{"cache", "object-cache sweep, cache=0/64KiB/1MiB", experiments.CacheSweep},
		{"vector", "vectorized execution vs row-at-a-time, compiled predicates", experiments.VectorSweep},
		{"shard", "sharded-store scaling, shards=1/2/4", experiments.ShardScaling},
		{"joinpaths", "join access paths, forward vs join-index vs hash vs fusion", experiments.JoinAccessSweep},
		{"cluster", "reference clustering, scattered vs reorganized cold traversal", experiments.ClusterSweep},
		{"commit", "group-commit throughput, sessions=1/8/32 + snapshot/plan-cache phases", experiments.CommitThroughput},
	}
}

// writeShardJSON runs the sharded-store sweep of experiments.MeasureShard
// and writes the result as JSON. Rows, page reads and record densities are
// deterministic — the sweep itself fails if the read totals differ across
// shard counts; the wall-clock columns (wall_ms, rows_per_wall_sec,
// commits_per_sec, the speedups) are real measurements and vary run to run.
// The sweep builds its own fixed-size-record extents, so -scale is ignored.
func writeShardJSON(path string) error {
	res, err := experiments.MeasureShard(0, 0)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeVectorJSON runs the vectorized-execution sweep of
// experiments.MeasureVector and writes the result as JSON. Rows, page reads,
// simulated time, decode counts and the compiled flags are deterministic;
// the wall-clock and allocation columns are real measurements and vary run
// to run.
func writeVectorJSON(path string, scale float64) error {
	env, err := experiments.BuildEnv(experiments.Scale(scale))
	if err != nil {
		return fmt.Errorf("building environment: %w", err)
	}
	res, err := experiments.MeasureVector(env)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeBenchJSON measures the representative operation set of
// experiments.MeasureBaseline (bulk flush, cold extent scans, the Section 6
// join strategies) and writes the result as JSON. All numbers are simulated
// disk metrics from seeded data, so the file is byte-stable across machines
// and reruns — suitable for checking in and diffing against.
func writeBenchJSON(path string, scale float64) error {
	env, err := experiments.BuildEnv(experiments.Scale(scale))
	if err != nil {
		return fmt.Errorf("building environment: %w", err)
	}
	base, err := experiments.MeasureBaseline(env)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeParallelJSON runs the worker-count sweep of experiments.MeasureParallel
// and writes the result as JSON. Rows, page reads and simulated time are
// deterministic across machines and worker counts; the wall-clock columns
// (wall_ms, rows_per_wall_sec, speedup) are real measurements and vary run
// to run — the file is a scaling snapshot, not a byte-stable artifact.
func writeParallelJSON(path string, scale float64) error {
	env, err := experiments.BuildEnv(experiments.Scale(scale))
	if err != nil {
		return fmt.Errorf("building environment: %w", err)
	}
	res, err := experiments.MeasureParallel(env, 0)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeCacheJSON runs the object-cache sweep of experiments.MeasureCache and
// writes the result as JSON. Rows, page reads, simulated time, hit rates and
// decode counts are deterministic; the wall-clock and allocation columns are
// real measurements and vary run to run.
func writeCacheJSON(path string, scale float64) error {
	env, err := experiments.BuildEnv(experiments.Scale(scale))
	if err != nil {
		return fmt.Errorf("building environment: %w", err)
	}
	res, err := experiments.MeasureCache(env, 0)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeJoinJSON runs the join-access-path sweep of experiments.MeasureJoin
// (deep-path and many-to-many joins through forward traversal, the binary
// join index, hash partition and the fusion join; latency replay on, best of
// N) and writes the result as JSON. Rows, fingerprints and page reads are
// deterministic — the sweep itself fails if reads vary across repetitions or
// rows diverge across access paths; the wall-clock columns are real
// measurements and vary run to run. It also enforces the 5x acceptance floor
// on the 3-hop path query. The sweep builds its own extents, so -scale is
// ignored.
func writeJoinJSON(path string) error {
	res, err := experiments.MeasureJoin(0)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeClusterJSON runs the clustering protocol of experiments.MeasureCluster
// (scattered cold traversal -> traced passes -> online reorganization ->
// clustered cold traversal) and writes the result as JSON. Rows, reads,
// simulated time, moved/compacted counts and the read reduction are
// deterministic; wall_ms varies run to run. The protocol builds its own
// deliberately scattered extents, so -scale is ignored.
func writeClusterJSON(path string) error {
	res, err := experiments.MeasureCluster(0)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeCommitJSON runs the commit-pipeline sweep of experiments.MeasureCommit
// (mixed read/write sessions at 1/8/32, group commit off/on over a 1ms
// simulated fsync, plus the snapshot lock-freedom and plan-cache hit-rate
// phases) and writes the result as JSON. Txn/read/force counts and the two
// phase verdicts are deterministic; the wall-clock columns (wall_ms,
// commits_per_sec, the percentiles, the speedups) are real measurements and
// vary run to run. The sweep enforces its acceptance floors itself — it
// errors rather than writing a file that fails them. The sweep builds its
// own extents, so -scale is ignored.
func writeCommitJSON(path string) error {
	res, err := experiments.MeasureCommit(0)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	scale := flag.Float64("scale", 0.1, "database scale relative to the paper's Table 13 (1.0 = 20000 vehicles, 200000 companies)")
	only := flag.String("only", "", "run a single artifact (see -list)")
	list := flag.Bool("list", false, "list artifact names and exit")
	benchJSON := flag.String("bench-json", "", "write a JSON baseline of per-artifact simulated I/O to this file and exit")
	parallelJSON := flag.String("parallel-json", "", "write the workers=1/2/4/8 parallel scaling sweep to this file and exit")
	cacheJSON := flag.String("cache-json", "", "write the object-cache sweep (cache=0/64KiB/1MiB) to this file and exit")
	vectorJSON := flag.String("vector-json", "", "write the vectorized-execution sweep (row/vector/vector-parallel) to this file and exit")
	shardJSON := flag.String("shard-json", "", "write the sharded-store sweep (shards=1/2/4, queries + commit throughput) to this file and exit")
	joinJSON := flag.String("join-json", "", "write the join-access-path sweep (forward/join-index/hash/fusion) to this file and exit")
	clusterJSON := flag.String("cluster-json", "", "write the clustering protocol (scattered vs reorganized cold traversal) to this file and exit")
	commitJSON := flag.String("commit-json", "", "write the group-commit sweep (sessions=1/8/32, off/on, p50/p99 + snapshot/plan-cache phases) to this file and exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the run executes")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}

	arts := artifacts()
	if *list {
		for _, a := range arts {
			fmt.Printf("%-16s %s\n", a.name, a.desc)
		}
		return
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "bench-json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (scale %g)\n", *benchJSON, *scale)
		return
	}
	if *parallelJSON != "" {
		if err := writeParallelJSON(*parallelJSON, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "parallel-json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (scale %g)\n", *parallelJSON, *scale)
		return
	}
	if *cacheJSON != "" {
		if err := writeCacheJSON(*cacheJSON, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "cache-json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (scale %g)\n", *cacheJSON, *scale)
		return
	}
	if *vectorJSON != "" {
		if err := writeVectorJSON(*vectorJSON, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "vector-json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (scale %g)\n", *vectorJSON, *scale)
		return
	}
	if *shardJSON != "" {
		if err := writeShardJSON(*shardJSON); err != nil {
			fmt.Fprintln(os.Stderr, "shard-json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *shardJSON)
		return
	}
	if *joinJSON != "" {
		if err := writeJoinJSON(*joinJSON); err != nil {
			fmt.Fprintln(os.Stderr, "join-json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *joinJSON)
		return
	}
	if *clusterJSON != "" {
		if err := writeClusterJSON(*clusterJSON); err != nil {
			fmt.Fprintln(os.Stderr, "cluster-json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *clusterJSON)
		return
	}
	if *commitJSON != "" {
		if err := writeCommitJSON(*commitJSON); err != nil {
			fmt.Fprintln(os.Stderr, "commit-json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *commitJSON)
		return
	}

	fmt.Printf("MOOD experiment harness - scale %g (paper scale = 1.0)\n", *scale)
	env, err := experiments.BuildEnv(experiments.Scale(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, "building environment:", err)
		os.Exit(1)
	}
	fmt.Printf("database: %d vehicles, %d drivetrains, %d engines, %d companies\n",
		env.Cfg.Vehicles, env.Cfg.DriveTrains, env.Cfg.Engines, env.Cfg.Companies)

	ran := 0
	for _, a := range arts {
		if *only != "" && !strings.EqualFold(a.name, *only) {
			continue
		}
		if err := a.run(os.Stdout, env); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", a.name, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown artifact %q (use -list)\n", *only)
		os.Exit(1)
	}
}
