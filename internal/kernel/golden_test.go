package kernel

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestMOODSQLGolden runs a CREATE/INSERT/SELECT script through the whole
// stack — MOODSQL parser, optimizer, executor — and compares the rendered
// results against a checked-in golden file. Regenerate after an intentional
// output change with:
//
//	go test ./internal/kernel -run TestMOODSQLGolden -update
func TestMOODSQLGolden(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "basic.moodsql"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	for _, stmt := range splitScript(string(script)) {
		fmt.Fprintf(&out, "moodsql> %s\n", stmt)
		res, err := db.Execute(stmt)
		if err != nil {
			fmt.Fprintf(&out, "error: %v\n\n", err)
			continue
		}
		out.WriteString(renderResult(res))
		out.WriteString("\n")
	}

	goldenPath := filepath.Join("testdata", "basic.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got := out.String(); got != string(want) {
		t.Errorf("output differs from %s (re-run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, want)
	}
}

// splitScript breaks a .moodsql file into statements: "--" comment lines are
// dropped, statements are separated by semicolons, blanks are skipped, and
// each statement's whitespace is collapsed so it renders on one line.
func splitScript(script string) []string {
	var kept []string
	for _, line := range strings.Split(script, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "--") {
			continue
		}
		kept = append(kept, line)
	}
	var stmts []string
	for _, raw := range strings.Split(strings.Join(kept, "\n"), ";") {
		stmt := strings.Join(strings.Fields(raw), " ")
		if stmt != "" {
			stmts = append(stmts, stmt)
		}
	}
	return stmts
}

// renderResult prints a Result as a fixed-format table: a header of column
// names, a separator, and each row's values in the paper's <...>/{...}
// notation via object.Value.String.
func renderResult(res *Result) string {
	if res == nil || len(res.Columns) == 0 {
		return "(no result)\n"
	}
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, " | "))
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", len(strings.Join(res.Columns, " | "))))
	b.WriteString("\n")
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		b.WriteString(strings.Join(cells, " | "))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(res.Rows))
	return b.String()
}
