// Package kernel is the MOOD kernel façade (Figure 2.1): it assembles the
// storage manager, WAL, lock manager, catalog, Function Manager, algebra,
// optimizer and executor into one database object; interprets MOODSQL
// statements (DDL, object creation, queries, updates); maintains the
// statistics base; and exposes the cursor protocol MoodView uses
// (Section 9.4).
//
// As the paper describes, kernel functions are divided between the SQL
// interpreter (this package and its dependents) and externally compiled
// member functions dispatched through the Function Manager with late
// binding.
package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cluster"
	"mood/internal/cost"
	"mood/internal/exec"
	"mood/internal/expr"
	"mood/internal/funcmgr"
	"mood/internal/joinindex"
	"mood/internal/lock"
	"mood/internal/objcache"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
	"mood/internal/stats"
	"mood/internal/storage"
	"mood/internal/wal"
)

// Shard bundles one shard's independent storage stack: its own simulated
// disk, buffer pool, write-ahead log, file directory and object store. A
// single-store database has exactly one; a sharded database has
// Options.ShardCount of them, sharing nothing below the catalog.
type Shard struct {
	Disk  *storage.DiskSim
	Pool  *storage.BufferPool
	Log   *wal.Log
	FM    *storage.FileManager
	Store *storage.ObjectStore

	prefetcher *storage.Prefetcher // nil when readahead is off
}

// DB is one open MOOD database.
type DB struct {
	// Disk, Pool and Log alias shard 0's stack — the full picture for a
	// single-store database, and the home of index pages and the system
	// directory for a sharded one. Per-shard stacks live in Shards.
	Disk  *storage.DiskSim
	Pool  *storage.BufferPool
	Log   *wal.Log
	Locks *lock.Manager
	Cat   *catalog.Catalog
	Funcs *funcmgr.Manager
	Alg   *algebra.Algebra
	Exec  *exec.Executor

	// Store is the storage interface the catalog runs over: the single
	// ObjectStore, or the ShardedStore routing across Shards.
	Store storage.Store
	// Shards holds every shard's independent stack (length 1 unsharded).
	Shards []*Shard

	stats   *cost.Stats
	statsMu sync.Mutex // guards stats: concurrent committers invalidate it

	// bjis is the registry of maintained binary join indices. bjiMu guards
	// it (the mutation observer walks it on every object write); bjiLogMu
	// serializes index maintenance, so bjiTx — the WAL micro-transaction the
	// attached page loggers append under — is single-writer state.
	bjis     map[string]*joinindex.BinaryJoinIndex
	bjiMu    sync.RWMutex
	bjiLogMu sync.Mutex
	bjiTx    wal.TxID

	ocache *objcache.Cache // nil when the object cache is off

	// tracer collects reference-traversal statistics for the clustering
	// subsystem; nil when tracing is off. reorgMu serializes Reorganize
	// (manual calls and the background loop); reorgStop/reorgWG manage the
	// background reorganizer's lifetime.
	tracer       *cluster.Tracer
	clusterBatch int
	reorgMu      sync.Mutex
	reorgStop    chan struct{}
	reorgWG      sync.WaitGroup

	// txSeq mints lock-manager transaction ids in sharded mode, where no
	// single WAL owns the id space.
	txSeq atomic.Uint64

	// vs is the copy-on-write version overlay backing MVCC snapshot reads.
	vs *versionStore

	// plans caches optimized plans per normalized statement shape; nil when
	// the plan cache is off.
	plans *planCache

	parallelism      int
	parallelMinPages float64

	// ForceJoin pins every join's physical method when non-nil (the
	// differential wall and the moodbench sweep drive it); applicability
	// still gates the override, so an inapplicable force keeps the
	// cost-based choice. Set only on a quiesced session.
	ForceJoin *cost.JoinMethod

	// LastPlan and LastExplain describe the most recent SELECT, for the
	// moodsql shell's EXPLAIN support and for the experiment harness.
	// lastMu guards the writes so concurrent sessions don't race; readers
	// are expected to inspect them from a quiesced session.
	lastMu      sync.Mutex
	LastPlan    optimizer.Plan
	LastExplain *optimizer.Explain
	// LastAnalyze holds the most recent EXPLAIN ANALYZE's per-operator
	// instrumentation (rows, simulated page reads, wall time).
	LastAnalyze *exec.Analysis
}

// Options configures Open.
type Options struct {
	DiskParams   storage.DiskParams
	BufferFrames int
	// Parallelism is the intra-query degree of parallelism: when > 1 the
	// optimizer wraps exchangeable operators (extent scans, index
	// selections, hash-join probes) in Exchange nodes executed by that many
	// worker goroutines. Zero or one keeps every plan serial.
	Parallelism int
	// ParallelMinPages gates parallelization on estimated page footprint
	// (zero means the optimizer's default threshold; negative disables the
	// threshold).
	ParallelMinPages float64
	// ObjectCacheBytes is the decoded-object cache budget; zero disables the
	// cache. Cached values skip both the page fetch and the decode on re-
	// dereference and are invalidated by Update/Delete and WAL recovery.
	ObjectCacheBytes int64
	// PrefetchWorkers sizes the buffer-pool readahead pool; zero disables
	// readahead. Scans and batched dereferences then overlap upcoming page
	// loads with decode work. On a sharded database each shard gets its own
	// readahead pool of this size.
	PrefetchWorkers int
	// ShardCount partitions class extents across that many independent
	// object stores, each with its own disk, buffer pool, file directory
	// and WAL (storage.MaxShards at most). Inserts rotate round-robin;
	// reads route by the shard id carried in every OID. Zero or one keeps
	// the single monolithic store. BufferFrames is the PER-SHARD pool size.
	ShardCount int
	// ClusterSampleEvery enables the clustering tracer, recording every
	// N-th traversal observation (1 records all of them; zero disables
	// clustering entirely). The tracer hooks the catalog's batched
	// dereference and the stores' batch fetches; EXPLAIN ANALYZE then
	// renders clustered= counters, and DB.Reorganize (or the background
	// loop, see ClusterInterval) applies the learned placements.
	ClusterSampleEvery int
	// ClusterInterval runs the online reorganizer periodically in the
	// background; zero leaves reorganization to explicit Reorganize calls.
	ClusterInterval time.Duration
	// ClusterBatch bounds the records moved per reorganization transaction
	// (zero uses the default of 64).
	ClusterBatch int
	// GroupCommit batches concurrent commit forces on every shard's WAL:
	// one leader per commit window pays the (simulated) fsync for the whole
	// batch, so N sessions no longer serialize N forces behind one device.
	GroupCommit bool
	// PlanCache caches optimized SELECT plans per normalized statement
	// shape (constants parameterized away), so the hot path of a repeated
	// shape skips parse and optimize entirely. Cached plans keep their
	// first binding's cost estimates and survive data mutations; DDL, index
	// builds and RefreshStats invalidate them.
	PlanCache bool
}

// DefaultOptions returns a laptop-friendly configuration.
func DefaultOptions() Options {
	return Options{DiskParams: storage.DefaultDiskParams(), BufferFrames: 4096}
}

// Open creates a fresh in-memory MOOD database.
func Open(opts Options) (*DB, error) {
	if opts.BufferFrames <= 0 {
		opts.BufferFrames = 4096
	}
	nshards := opts.ShardCount
	if nshards <= 0 {
		nshards = 1
	}
	if nshards > storage.MaxShards {
		return nil, fmt.Errorf("kernel: ShardCount %d exceeds the OID shard field's maximum %d", nshards, storage.MaxShards)
	}
	// Build one complete stack per shard: nothing below the catalog is
	// shared, so writers on different shards contend on no lock and no
	// fsync stream.
	shards := make([]*Shard, nshards)
	stores := make([]*storage.ObjectStore, nshards)
	for i := 0; i < nshards; i++ {
		disk := storage.NewDiskSim(opts.DiskParams)
		pool := storage.NewBufferPool(disk, opts.BufferFrames)
		log := wal.NewLog()
		log.SetGroupCommit(opts.GroupCommit)
		pool.SetFlushHook(log.FlushHook())
		fm, err := storage.NewFileManager(pool)
		if err != nil {
			return nil, err
		}
		st := storage.NewShardObjectStore(pool, fm, i)
		shards[i] = &Shard{Disk: disk, Pool: pool, Log: log, FM: fm, Store: st}
		stores[i] = st
	}
	var store storage.Store
	if nshards == 1 {
		store = stores[0]
	} else {
		store = storage.NewShardedStore(stores)
	}
	cat, err := catalog.New(store)
	if err != nil {
		return nil, err
	}
	locks := lock.NewManager(0)
	funcs := funcmgr.New(cat, locks)
	alg := algebra.New(cat)
	db := &DB{
		Disk: shards[0].Disk, Pool: shards[0].Pool, Log: shards[0].Log,
		Locks: locks,
		Cat:   cat, Funcs: funcs, Alg: alg,
		Exec:   exec.New(alg),
		Store:  store,
		Shards: shards,
		bjis:   map[string]*joinindex.BinaryJoinIndex{},
		vs:     newVersionStore(),

		parallelism:      opts.Parallelism,
		parallelMinPages: opts.ParallelMinPages,
	}
	if opts.PlanCache {
		db.plans = newPlanCache()
	}
	// Every object create/update/delete — autocommit DML and transactional
	// DML alike — routes through the catalog, so one observer keeps every
	// maintained join index in step with the extents (transaction aborts
	// re-fire it with the logical undo's reversed values).
	cat.SetMutationObserver(db.maintainBJIs)
	// Late-bound method dispatch for predicates and projections.
	alg.Invoke = db.invoke
	// Share the Function Manager's query registry so compiled predicate
	// closures are resolved through the same late-binding manager as
	// methods, and survive across statements of one session.
	db.Exec.Funcs = funcs.Queries()
	// EXPLAIN ANALYZE attributes simulated page reads per operator; the
	// executor has no direct disk access, so give it the read counters.
	// Totals sum every shard's DiskSim delta; the per-shard vector feeds
	// the "shard pages" annotation.
	db.Exec.Pages = store.ReadCount
	db.Exec.ShardPages = store.ShardReads
	if opts.ObjectCacheBytes > 0 {
		db.ocache = objcache.New(opts.ObjectCacheBytes)
		cat.SetObjectCache(db.ocache)
		// Writers bump the cache epoch while still holding the owning
		// store's exclusive lock, so in-flight fetches of the old bytes
		// never land. OIDs carry their shard tag, so one cache serves all
		// shards without aliasing.
		store.SetInvalidator(db.ocache)
		db.Exec.CacheHits = db.ocache.Hits
		db.Exec.CacheMisses = db.ocache.Misses
	}
	if opts.ClusterSampleEvery > 0 {
		db.tracer = cluster.New(opts.ClusterSampleEvery)
		db.tracer.Enable(true)
		db.clusterBatch = opts.ClusterBatch
		// Traversal order flows in from the catalog's batched dereference;
		// measured page co-residency from the stores' batch fetches.
		cat.SetAccessObserver(db.tracer.ObserveAccess)
		store.SetBatchObserver(db.tracer.ObserveBatch)
		db.Exec.ClusterRefs = db.tracer.BatchRefs
		db.Exec.ClusterPages = db.tracer.BatchPages
		if opts.ClusterInterval > 0 {
			db.startReorganizer(opts.ClusterInterval)
		}
	}
	if opts.PrefetchWorkers > 0 {
		for _, sh := range db.Shards {
			sh.prefetcher = storage.NewPrefetcher(sh.Pool, opts.PrefetchWorkers)
			sh.Store.SetPrefetcher(sh.prefetcher)
		}
		db.Exec.Prefetched = func() int64 {
			var n int64
			for _, sh := range db.Shards {
				n += sh.prefetcher.Loaded()
			}
			return n
		}
		db.Exec.Quiesce = func() {
			for _, sh := range db.Shards {
				sh.prefetcher.Quiesce()
			}
		}
	}
	return db, nil
}

// Close releases background resources (the readahead workers and the
// background reorganizer). The database object itself is in-memory and
// needs no further teardown; Close is safe to call on a database opened
// without either feature.
func (db *DB) Close() {
	if db.reorgStop != nil {
		close(db.reorgStop)
		db.reorgWG.Wait()
		db.reorgStop = nil
	}
	for _, sh := range db.Shards {
		if sh.prefetcher != nil {
			sh.prefetcher.Close()
		}
	}
}

// Recover replays every shard's WAL against its own buffer pool
// (ARIES-style redo/undo, one independent pass per shard — the logs share
// no LSN space and touch disjoint disks) and drops every cached decoded
// object: recovery rewrites pages underneath the cache, so its contents are
// no longer trustworthy. The returned stats aggregate all shards.
func (db *DB) Recover() (wal.RecoveryStats, error) {
	var total wal.RecoveryStats
	// Recovery rewrites object state underneath the snapshot overlay; its
	// retained pre-images (and any open snapshots) no longer describe
	// anything real.
	db.vs.Reset()
	for _, sh := range db.Shards {
		st, err := sh.Log.Recover(sh.Pool)
		total.Analyzed += st.Analyzed
		total.Redone += st.Redone
		total.Undone += st.Undone
		total.Losers += st.Losers
		if err != nil {
			if db.ocache != nil {
				db.ocache.Reset()
			}
			return total, err
		}
	}
	if db.ocache != nil {
		db.ocache.Reset()
	}
	return total, nil
}

// Checkpoint flushes every shard's dirty pages and takes a truncating
// checkpoint on its WAL, reclaiming the log records the flushes made
// redundant. Long-running sessions call it periodically to bound log
// memory.
func (db *DB) Checkpoint() error {
	for _, sh := range db.Shards {
		if err := sh.Pool.FlushAll(); err != nil {
			return err
		}
		sh.Log.CheckpointTruncate()
	}
	return nil
}

// ObjectCache returns the decoded-object cache, nil when disabled.
func (db *DB) ObjectCache() *objcache.Cache { return db.ocache }

// invoke dispatches a method call from the expression interpreter through
// the Function Manager with late binding: the receiver's run-time class
// determines the implementation.
func (db *DB) invoke(self object.Value, selfOID storage.OID, method string, args []object.Value) (object.Value, error) {
	class := ""
	if !selfOID.IsNil() {
		if _, c, err := db.Cat.GetObject(selfOID); err == nil {
			class = c
		}
	}
	if class == "" {
		return object.Null, fmt.Errorf("kernel: cannot determine receiver class for %s()", method)
	}
	return db.Funcs.Invoke(class, method, &funcmgr.Invocation{
		Self: self, SelfOID: selfOID, Args: args,
		Resolve: db.Cat.Resolver(),
	})
}

// RegisterMethod attaches a Go body to a declared method through the
// Function Manager (the substitute for compiling C++ source into the
// class's shared object).
func (db *DB) RegisterMethod(class, name string, body funcmgr.Body) error {
	sig, err := db.Cat.Method(class, name)
	if err != nil {
		return err
	}
	return db.Funcs.Register(sig, body)
}

// RefreshStats re-collects the Table 8 statistics base; the optimizer uses
// it for every subsequent query. Cached plans carry old estimates, so the
// plan cache is invalidated alongside.
func (db *DB) RefreshStats() error {
	db.invalidatePlans()
	_, err := db.refreshStats()
	return err
}

func (db *DB) refreshStats() (*cost.Stats, error) {
	st, err := stats.Collect(db.Cat, cost.Disk{
		B:   db.Disk.Params().BlockSize,
		BTT: db.Disk.Params().BTT,
		EBT: db.Disk.Params().EBT,
		R:   db.Disk.Params().R,
		S:   db.Disk.Params().S,
	})
	if err != nil {
		return nil, err
	}
	// The kernel's executor implements the fusion join, so BestJoin may
	// price it as a fifth candidate; the knob defaults off in the cost
	// package so the paper's four-way choice set stays byte-exact there.
	st.Fusion = true
	if db.ocache != nil {
		// Feed the observed hit rate and the batched-dereference model into
		// the cost formulas; with the cache off the zero-valued knobs keep
		// the paper's formulas byte-exact.
		st.CacheHitRate = db.ocache.HitRate()
		st.BatchFetch = true
	}
	if db.tracer != nil {
		// Learn each class's clustering factor from the measured page
		// co-residency of batched fetches; classes without enough observed
		// traffic keep the factor at zero (formulas byte-exact).
		fs := db.tracer.FileStats()
		obs := make([]stats.ClusterObs, len(fs))
		for i, f := range fs {
			obs[i] = stats.ClusterObs{Shard: f.Shard, File: f.File, Runs: f.Runs, Refs: f.Refs, Pages: f.Pages}
		}
		stats.ApplyClusterFactors(st, db.Cat, obs)
	}
	db.statsMu.Lock()
	db.stats = st
	db.statsMu.Unlock()
	return st, nil
}

// invalidateStats drops the cached statistics base. Mutating statements and
// concurrent transaction commits all call it; the mutex keeps the write
// race-free.
func (db *DB) invalidateStats() {
	db.statsMu.Lock()
	db.stats = nil
	db.statsMu.Unlock()
}

// Stats returns the current statistics base, collecting it if necessary.
func (db *DB) Stats() (*cost.Stats, error) {
	db.statsMu.Lock()
	cached := db.stats
	db.statsMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	return db.refreshStats()
}

// BuildBJI materializes a binary join index on class.attribute and
// registers it with the optimizer and executor. From then on the index is
// maintained: every mutation of an object in the class's IS-A closure
// routes through maintainBJIs, with the btree page mutations page-image
// logged under a WAL micro-transaction.
func (db *DB) BuildBJI(name, class, attribute string) (*joinindex.BinaryJoinIndex, error) {
	ix, err := joinindex.BuildBJI(db.Cat, class, attribute)
	if err != nil {
		return nil, err
	}
	ix.SetLogger(db.bjiPageLogger())
	db.bjiMu.Lock()
	db.bjis[name] = ix
	db.Exec.BJIs[name] = ix
	db.bjiMu.Unlock()
	db.invalidatePlans()
	return ix, nil
}

// bjiPageLogger curries shard 0's WAL (index pages live in shard 0's pool)
// into the btree page-logger shape. The transaction id is read from bjiTx,
// which maintainBJIs sets while holding bjiLogMu — loggers only fire inside
// that critical section.
func (db *DB) bjiPageLogger() storage.PageLogger {
	return func(pid storage.PageID, off int, before, after []byte) (uint32, error) {
		lsn, err := db.Shards[0].Log.Update(db.bjiTx, pid, off, before, after)
		return uint32(lsn), err
	}
}

// maintainBJIs is the catalog's mutation observer: each binary join index
// whose indexed closure contains the mutated class applies the attribute
// delta inside one WAL micro-transaction on shard 0's log. The object cache
// needs no extra work here — the store already epoch-invalidated the OID
// while holding its exclusive lock. A failed maintenance aborts the
// micro-transaction (restoring the touched index pages from their logged
// before-images) and drops the affected indices rather than leave them out
// of step with the extent; the mutating statement then fails after the
// fact, like attribute-index partial failures.
func (db *DB) maintainBJIs(op byte, class string, oid storage.OID, old, new object.Value) error {
	db.bjiMu.RLock()
	var targets []*joinindex.BinaryJoinIndex
	var names []string
	for name, ix := range db.bjis {
		if db.Cat.IsA(class, ix.Class) {
			targets = append(targets, ix)
			names = append(names, name)
		}
	}
	db.bjiMu.RUnlock()
	if len(targets) == 0 {
		return nil
	}
	db.bjiLogMu.Lock()
	defer db.bjiLogMu.Unlock()
	sh := db.Shards[0]
	db.bjiTx = sh.Log.Begin()
	for _, ix := range targets {
		oldA, _ := old.Field(ix.Attribute) // zero (null) on create
		newA, _ := new.Field(ix.Attribute) // zero (null) on delete
		if err := ix.Maintain(oid, oldA, newA); err != nil {
			aerr := sh.Log.Abort(db.bjiTx, func(page storage.PageID, off int, image []byte, lsn wal.LSN) error {
				pg, ferr := sh.Pool.Fetch(page)
				if ferr != nil {
					return ferr
				}
				copy(pg.Bytes()[off:], image)
				pg.SetLSN(uint32(lsn))
				return sh.Pool.Unpin(page, true)
			})
			db.bjiMu.Lock()
			for _, n := range names {
				delete(db.bjis, n)
				delete(db.Exec.BJIs, n)
			}
			db.bjiMu.Unlock()
			db.invalidatePlans()
			if aerr != nil {
				return fmt.Errorf("kernel: join index maintenance: %v (abort: %w)", err, aerr)
			}
			return fmt.Errorf("kernel: join index maintenance: %w", err)
		}
	}
	return sh.Log.Commit(db.bjiTx)
}

// Result re-exports the executor's result type.
type Result = exec.Result

// Execute interprets one MOODSQL statement. SELECTs return a Result; DDL
// and DML return a Result describing the outcome.
func (db *DB) Execute(statement string) (*Result, error) {
	if db.plans != nil {
		if res, handled, err := db.executeCached(statement); handled {
			return res, err
		}
	}
	st, err := sql.Parse(statement)
	if err != nil {
		return nil, err
	}
	return db.ExecuteStmt(st)
}

// ExecuteScript runs a semicolon-separated list of statements, returning
// the last result.
func (db *DB) ExecuteScript(script string) (*Result, error) {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		if last, err = db.ExecuteStmt(st); err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecuteStmt interprets one parsed statement.
func (db *DB) ExecuteStmt(st sql.Statement) (*Result, error) {
	switch n := st.(type) {
	case *sql.CreateClass:
		return db.execCreateClass(n)
	case *sql.CreateIndex:
		return db.execCreateIndex(n)
	case *sql.CreateJoinIndex:
		if _, err := db.BuildBJI(n.Name, n.Class, n.Attr); err != nil {
			return nil, err
		}
		return message("join index %s created on %s(%s)", n.Name, n.Class, n.Attr), nil
	case *sql.DropClass:
		if err := db.Cat.DropClass(n.Name); err != nil {
			return nil, err
		}
		db.invalidateStats()
		db.invalidatePlans()
		return message("class %s dropped", n.Name), nil
	case *sql.DropIndex:
		if err := db.Cat.DropIndex(n.Name); err != nil {
			return nil, err
		}
		db.invalidatePlans()
		return message("index %s dropped", n.Name), nil
	case *sql.NewObject:
		return db.execNewObject(n)
	case *sql.Select:
		return db.execSelect(n)
	case *sql.Explain:
		return db.execExplain(n)
	case *sql.Update:
		return db.execUpdate(n)
	case *sql.Delete:
		return db.execDelete(n)
	}
	return nil, fmt.Errorf("kernel: unsupported statement %T", st)
}

func message(format string, args ...interface{}) *Result {
	return &Result{
		Columns: []string{"result"},
		Rows:    [][]object.Value{{object.NewString(fmt.Sprintf(format, args...))}},
	}
}

func (db *DB) execCreateClass(n *sql.CreateClass) (*Result, error) {
	fields := make([]object.Field, len(n.Fields))
	for i, f := range n.Fields {
		fields[i] = object.Field{Name: f.Name, Type: f.Type}
	}
	tuple := object.TupleOf(fields...)
	var methods []*catalog.MethodSig
	for _, m := range n.Methods {
		methods = append(methods, &catalog.MethodSig{
			Name:       m.Name,
			ParamNames: m.ParamNames,
			ParamTypes: m.ParamTypes,
			ReturnType: m.Return,
		})
	}
	var err error
	if n.IsType {
		_, err = db.Cat.DefineType(n.Name, tuple)
	} else {
		_, err = db.Cat.DefineClass(n.Name, tuple, n.Supers, methods)
	}
	if err != nil {
		return nil, err
	}
	db.invalidateStats()
	db.invalidatePlans()
	kind := "class"
	if n.IsType {
		kind = "type"
	}
	return message("%s %s created", kind, n.Name), nil
}

func (db *DB) execCreateIndex(n *sql.CreateIndex) (*Result, error) {
	kind := catalog.BTreeIndex
	if n.Hash {
		kind = catalog.HashIndex
	}
	if _, err := db.Cat.CreateIndex(n.Name, n.Class, n.Attr, kind, n.Unique); err != nil {
		return nil, err
	}
	db.invalidatePlans()
	return message("index %s created on %s(%s)", n.Name, n.Class, n.Attr), nil
}

// evalNewObject builds the tuple of a "new Class <v1, v2, ...>" statement:
// values are assigned positionally to the class's full (inherited-first)
// attribute list and cast to the attribute types at run time.
func (db *DB) evalNewObject(n *sql.NewObject) (object.Value, error) {
	attrs, err := db.Cat.AllAttributes(n.Class)
	if err != nil {
		return object.Null, err
	}
	if len(n.Values) > len(attrs) {
		return object.Null, fmt.Errorf("kernel: new %s given %d values for %d attributes",
			n.Class, len(n.Values), len(attrs))
	}
	names := make([]string, 0, len(n.Values))
	fields := make([]object.Value, 0, len(n.Values))
	for i, ve := range n.Values {
		v, err := ve.Eval(&expr.Env{Resolve: db.Cat.Resolver()})
		if err != nil {
			return object.Null, err
		}
		cast, err := expr.Cast(v, attrs[i].Type)
		if err != nil {
			return object.Null, fmt.Errorf("kernel: attribute %s: %w", attrs[i].Name, err)
		}
		names = append(names, attrs[i].Name)
		fields = append(fields, cast)
	}
	return object.NewTuple(names, fields), nil
}

func (db *DB) execNewObject(n *sql.NewObject) (*Result, error) {
	tuple, err := db.evalNewObject(n)
	if err != nil {
		return nil, err
	}
	oid, err := db.Cat.CreateObject(n.Class, tuple)
	if err != nil {
		return nil, err
	}
	// Autocommit create: snapshots begun before this statement must not see
	// the object.
	ws := newWriteSet()
	db.vs.capture(ws, oid, n.Class, object.Null, true)
	db.vs.commit(ws)
	db.invalidateStats()
	res := message("created %s", oid)
	res.OIDs = []storage.OID{oid}
	return res, nil
}

// optimize plans a SELECT and records it in LastPlan/LastExplain.
func (db *DB) optimize(n *sql.Select) (optimizer.Plan, error) {
	st, err := db.Stats()
	if err != nil {
		return nil, err
	}
	opt := optimizer.New(db.Cat, st)
	opt.Parallelism = db.parallelism
	opt.ParallelMinPages = db.parallelMinPages
	opt.ForceJoinMethod = db.ForceJoin
	db.bjiMu.RLock()
	for name, ix := range db.bjis {
		opt.RegisterBJI(ix.Class, ix.Attribute, name, ix.CostStats())
	}
	db.bjiMu.RUnlock()
	plan, explain, err := opt.Optimize(n)
	if err != nil {
		return nil, err
	}
	db.lastMu.Lock()
	db.LastPlan, db.LastExplain = plan, explain
	db.lastMu.Unlock()
	return plan, nil
}

func (db *DB) execSelect(n *sql.Select) (*Result, error) {
	plan, err := db.optimize(n)
	if err != nil {
		return nil, err
	}
	coll, err := db.Exec.Execute(plan)
	if err != nil {
		return nil, err
	}
	return exec.Extract(coll), nil
}

// execExplain implements EXPLAIN [ANALYZE] <select>. Plain EXPLAIN renders
// the optimized access plan without running it; ANALYZE runs the query
// through the streaming pipeline and renders the plan tree annotated with
// per-operator rows in/out, simulated page reads, and wall time. The raw
// instrumentation is kept in LastAnalyze for programmatic access.
func (db *DB) execExplain(n *sql.Explain) (*Result, error) {
	plan, err := db.optimize(n.Query)
	if err != nil {
		return nil, err
	}
	if !n.Analyze {
		db.lastMu.Lock()
		db.LastAnalyze = nil
		db.lastMu.Unlock()
		return message("%s", optimizer.Render(plan)), nil
	}
	_, an, err := db.Exec.ExecuteAnalyzed(plan)
	if err != nil {
		return nil, err
	}
	if db.plans != nil {
		hits, misses := db.plans.Stats()
		an.PlanCacheEnabled = true
		an.PlanCacheHits, an.PlanCacheMisses = hits, misses
	}
	db.lastMu.Lock()
	db.LastAnalyze = an
	db.lastMu.Unlock()
	return message("%s", an.Render()), nil
}

// matchTargets evaluates a FROM item + WHERE against the store, returning
// matching OIDs (shared by UPDATE and DELETE).
func (db *DB) matchTargets(fi sql.FromItem, where expr.Expr) ([]storage.OID, error) {
	var out []storage.OID
	check := func(oid storage.OID, v object.Value) bool {
		if where != nil {
			env := &expr.Env{
				Vars:    map[string]object.Value{fi.Var: v},
				OIDs:    map[string]storage.OID{fi.Var: oid},
				Resolve: db.Cat.Resolver(),
				Invoke:  db.Alg.Invoke,
			}
			ok, err := expr.EvalBool(where, env)
			if err != nil || !ok {
				return true
			}
		}
		out = append(out, oid)
		return true
	}
	var err error
	if fi.Every || len(fi.Minus) > 0 {
		err = db.Cat.ScanClosure(fi.Class, fi.Minus, check)
	} else {
		err = db.Cat.ScanExtent(fi.Class, check)
	}
	return out, err
}

func (db *DB) execUpdate(n *sql.Update) (*Result, error) {
	targets, err := db.matchTargets(n.From, n.Where)
	if err != nil {
		return nil, err
	}
	ws := newWriteSet()
	for _, oid := range targets {
		old, class, err := db.Cat.GetObject(oid)
		if err != nil {
			return nil, err
		}
		// Retain the pre-image for snapshot readers before the store changes.
		db.vs.capture(ws, oid, class, old, false)
		// GetObject may return the cache's copy, whose backing storage is
		// shared with every other reader; mutate a private clone.
		v := old.Clone()
		env := &expr.Env{
			Vars:    map[string]object.Value{n.From.Var: v},
			OIDs:    map[string]storage.OID{n.From.Var: oid},
			Resolve: db.Cat.Resolver(),
			Invoke:  db.Alg.Invoke,
		}
		for _, set := range n.Sets {
			nv, err := set.Value.Eval(env)
			if err != nil {
				return nil, err
			}
			at, err := db.Cat.AttributeType(class, set.Attr)
			if err != nil {
				return nil, err
			}
			cast, err := expr.Cast(nv, at)
			if err != nil {
				return nil, err
			}
			v.SetField(set.Attr, cast)
		}
		if err := db.Cat.UpdateObject(oid, v); err != nil {
			return nil, err
		}
	}
	db.vs.commit(ws)
	db.invalidateStats()
	return message("%d object(s) updated", len(targets)), nil
}

func (db *DB) execDelete(n *sql.Delete) (*Result, error) {
	targets, err := db.matchTargets(n.From, n.Where)
	if err != nil {
		return nil, err
	}
	ws := newWriteSet()
	for _, oid := range targets {
		old, class, err := db.Cat.GetObject(oid)
		if err != nil {
			return nil, err
		}
		db.vs.capture(ws, oid, class, old, false)
		if err := db.Cat.DeleteObject(oid); err != nil {
			return nil, err
		}
	}
	db.vs.commit(ws)
	db.invalidateStats()
	return message("%d object(s) deleted", len(targets)), nil
}
