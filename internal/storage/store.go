package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Record tags: the first byte of every stored record says how the remaining
// bytes are to be interpreted.
const (
	recPlain    byte = 0 // payload follows inline
	recOverflow byte = 1 // u32 total length + u32 first overflow page follow
)

const overflowHeadSize = 1 + 4 + 4

// ObjectStore provides OID-addressed record storage over files: the
// storage-management service ESM supplies to MOOD. Records larger than a
// page spill into overflow page chains transparently, so MOOD objects (and
// MoodView's multimedia objects) are not limited by the block size.
//
// Readers (Get, ScanPage, PageList) take a shared lock, so parallel morsel
// workers scan and fetch concurrently; mutations take the exclusive lock.
type ObjectStore struct {
	bp *BufferPool
	fm *FileManager
	mu sync.RWMutex
	// inv and pf are installed once at open time (SetInvalidator /
	// SetPrefetcher), before the store is shared across goroutines; after
	// that they are only read.
	inv CacheInvalidator
	pf  *Prefetcher
	// shard/tag identify this store inside a ShardedStore: tag is ORed into
	// every OID the store mints, so routing a read back to the minting shard
	// is a pure function of the identifier. A standalone store is shard 0
	// with a zero tag — OIDs are bit-identical to the unsharded layout.
	shard int
	tag   OID
	// fwd maps a migrated record's original OID to its current physical
	// address (see migrate.go). Warm readers jump straight to the
	// destination; after a reopen the map is re-learned lazily from the
	// on-disk forward stubs.
	fwd sync.Map
	// batchObs, when set, receives one (file, refs, distinct pages)
	// observation per file-run of a FetchBatch call — the clustering
	// tracer's page co-residency feed. Installed once at open time.
	batchObs BatchObserver
}

// NewObjectStore creates a store over the given pool and file manager.
func NewObjectStore(bp *BufferPool, fm *FileManager) *ObjectStore {
	return &ObjectStore{bp: bp, fm: fm}
}

// NewShardObjectStore creates a store that mints OIDs tagged for the given
// shard id — the per-shard building block of a ShardedStore.
func NewShardObjectStore(bp *BufferPool, fm *FileManager, shard int) *ObjectStore {
	if shard < 0 || shard >= MaxShards {
		panic(fmt.Sprintf("storage: shard %d out of range [0,%d)", shard, MaxShards))
	}
	return &ObjectStore{bp: bp, fm: fm, shard: shard, tag: ShardTag(shard)}
}

// Files exposes the underlying file manager.
func (s *ObjectStore) Files() *FileManager { return s.fm }

// Pool exposes the underlying buffer pool.
func (s *ObjectStore) Pool() *BufferPool { return s.bp }

// Insert stores data as a new record of the file and returns its OID.
func (s *ObjectStore) Insert(f *File, data []byte) (OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	maxInline := MaxRecordSize(s.bp.Disk().PageSize()) - 1
	var rec []byte
	if len(data) <= maxInline {
		rec = make([]byte, 1+len(data))
		rec[0] = recPlain
		copy(rec[1:], data)
	} else {
		first, err := s.writeOverflow(data)
		if err != nil {
			return NilOID, err
		}
		rec = make([]byte, overflowHeadSize)
		rec[0] = recOverflow
		binary.LittleEndian.PutUint32(rec[1:], uint32(len(data)))
		binary.LittleEndian.PutUint32(rec[5:], uint32(first))
	}

	// Try the last data page first, then grow the file.
	if f.lastPage != 0 {
		pg, err := s.bp.Fetch(f.lastPage)
		if err != nil {
			return NilOID, err
		}
		slot, ierr := pg.Insert(rec)
		if uerr := s.bp.Unpin(f.lastPage, ierr == nil); uerr != nil {
			return NilOID, uerr
		}
		if ierr == nil {
			f.numRecs++
			if err := s.fm.syncDir(f); err != nil {
				return NilOID, err
			}
			return MakeOID(f.ID, f.lastPage, slot) | s.tag, nil
		}
		if ierr != ErrPageFull {
			return NilOID, ierr
		}
	}
	pg, err := s.appendPage(f)
	if err != nil {
		return NilOID, err
	}
	slot, ierr := pg.Insert(rec)
	if uerr := s.bp.Unpin(pg.ID, ierr == nil); uerr != nil {
		return NilOID, uerr
	}
	if ierr != nil {
		return NilOID, ierr
	}
	f.numRecs++
	if err := s.fm.syncDir(f); err != nil {
		return NilOID, err
	}
	return MakeOID(f.ID, pg.ID, slot) | s.tag, nil
}

// Get returns a copy of the record addressed by oid. Safe for concurrent
// callers: it holds the store's read lock, so only mutations are excluded.
func (s *ObjectStore) Get(oid OID) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getLocked(oid)
}

func (s *ObjectStore) getLocked(oid OID) ([]byte, error) {
	cur := s.forwardOf(oid)
	for hops := 0; hops < maxForwardHops; hops++ {
		pg, err := s.bp.Fetch(cur.Page())
		if err != nil {
			return nil, err
		}
		rec, gerr := pg.Get(cur.Slot())
		if gerr != nil {
			s.bp.Unpin(cur.Page(), false)
			return nil, gerr
		}
		if rec[0] == recForward {
			dst := forwardDst(rec)
			if err := s.bp.Unpin(cur.Page(), false); err != nil {
				return nil, err
			}
			s.learnForward(oid, dst)
			cur = dst
			continue
		}
		if rec[0] == recRelocated {
			rec = rec[relocHeadSize:]
		}
		switch rec[0] {
		case recPlain:
			out := make([]byte, len(rec)-1)
			copy(out, rec[1:])
			if err := s.bp.Unpin(cur.Page(), false); err != nil {
				return nil, err
			}
			return out, nil
		case recOverflow:
			total := binary.LittleEndian.Uint32(rec[1:])
			first := PageID(binary.LittleEndian.Uint32(rec[5:]))
			if err := s.bp.Unpin(cur.Page(), false); err != nil {
				return nil, err
			}
			return s.readOverflow(first, int(total))
		default:
			s.bp.Unpin(cur.Page(), false)
			return nil, fmt.Errorf("storage: corrupt record tag %d at %s", rec[0], cur)
		}
	}
	return nil, fmt.Errorf("storage: forwarding chain too deep at %s", oid)
}

// Update replaces the record addressed by oid with data; the OID is stable.
// A migrated record is updated in place at its current physical home, with
// the relocation frame (and therefore its scan identity) preserved.
func (s *ObjectStore) Update(oid OID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Invalidate before releasing the exclusive lock (deferred calls run
	// LIFO): readers are excluded for the whole mutation, so any cached
	// value for this OID is dropped before they can look again, and the
	// epoch bump kills in-flight fetches that read the old bytes.
	defer s.invalidate(oid)
	cur, err := s.locateLocked(oid)
	if err != nil {
		return err
	}
	pg, err := s.bp.Fetch(cur.Page())
	if err != nil {
		return err
	}
	old, gerr := pg.Get(cur.Slot())
	if gerr != nil {
		s.bp.Unpin(cur.Page(), false)
		return gerr
	}
	framed := old[0] == recRelocated
	oldInner := old
	if framed {
		oldInner = old[relocHeadSize:]
	}
	var oldOverflow PageID
	if oldInner[0] == recOverflow {
		oldOverflow = PageID(binary.LittleEndian.Uint32(oldInner[5:]))
	}
	// wrap re-frames an inner record for a relocated slot so scans keep
	// surfacing it under its original OID.
	wrap := func(rec []byte) []byte {
		if !framed {
			return rec
		}
		out := make([]byte, relocHeadSize+len(rec))
		out[0] = recRelocated
		binary.LittleEndian.PutUint64(out[1:], uint64(oid))
		copy(out[relocHeadSize:], rec)
		return out
	}

	maxInline := MaxRecordSize(s.bp.Disk().PageSize()) - 1
	if framed {
		maxInline -= relocHeadSize
	}
	var rec []byte
	var newOverflow PageID
	if len(data) <= maxInline {
		rec = make([]byte, 1+len(data))
		rec[0] = recPlain
		copy(rec[1:], data)
	} else {
		first, oerr := s.writeOverflow(data)
		if oerr != nil {
			s.bp.Unpin(cur.Page(), false)
			return oerr
		}
		newOverflow = first
		rec = make([]byte, overflowHeadSize)
		rec[0] = recOverflow
		binary.LittleEndian.PutUint32(rec[1:], uint32(len(data)))
		binary.LittleEndian.PutUint32(rec[5:], uint32(first))
	}

	uerr := pg.Update(cur.Slot(), wrap(rec))
	if uerr == ErrPageFull && rec[0] == recPlain {
		// Spill to overflow: the 9-byte head replaces the old record.
		first, oerr := s.writeOverflow(data)
		if oerr == nil {
			newOverflow = first
			head := make([]byte, overflowHeadSize)
			head[0] = recOverflow
			binary.LittleEndian.PutUint32(head[1:], uint32(len(data)))
			binary.LittleEndian.PutUint32(head[5:], uint32(first))
			uerr = pg.Update(cur.Slot(), wrap(head))
		} else {
			uerr = oerr
		}
	}
	if err := s.bp.Unpin(cur.Page(), uerr == nil); err != nil {
		return err
	}
	if uerr != nil {
		if newOverflow != 0 {
			s.freeOverflow(newOverflow)
		}
		return uerr
	}
	if oldOverflow != 0 {
		return s.freeOverflow(oldOverflow)
	}
	return nil
}

// Delete removes the record addressed by oid. Deleting a migrated record
// removes both the relocated copy and the forward stub at the original
// slot, so neither dangles (a later slot reuse at either position mints a
// fresh identity, never resurrects the old one).
func (s *ObjectStore) Delete(oid OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.invalidate(oid)
	cur, err := s.locateLocked(oid)
	if err != nil {
		return err
	}
	pg, err := s.bp.Fetch(cur.Page())
	if err != nil {
		return err
	}
	rec, gerr := pg.Get(cur.Slot())
	if gerr != nil {
		s.bp.Unpin(cur.Page(), false)
		return gerr
	}
	inner := rec
	if rec[0] == recRelocated {
		inner = rec[relocHeadSize:]
	}
	var overflow PageID
	if inner[0] == recOverflow {
		overflow = PageID(binary.LittleEndian.Uint32(inner[5:]))
	}
	derr := pg.Delete(cur.Slot())
	if err := s.bp.Unpin(cur.Page(), derr == nil); err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	if cur != oid {
		// Tombstone the forward stub at the record's original slot too.
		spg, err := s.bp.Fetch(oid.Page())
		if err != nil {
			return err
		}
		serr := spg.Delete(oid.Slot())
		if err := s.bp.Unpin(oid.Page(), serr == nil); err != nil {
			return err
		}
		if serr != nil {
			return serr
		}
		s.fwd.Delete(oid)
	}
	if overflow != 0 {
		if err := s.freeOverflow(overflow); err != nil {
			return err
		}
	}
	f, ferr := s.fm.FileByID(oid.File())
	if ferr == nil && f.numRecs > 0 {
		f.numRecs--
		return s.fm.syncDir(f)
	}
	return nil
}

// ScanRecord is one record surfaced by a page-at-a-time scan: the record's
// OID and a copy of its payload.
type ScanRecord struct {
	OID  OID
	Data []byte
}

// FirstScanPage returns the page a scan of the file starts at (0 for an
// empty file).
func (s *ObjectStore) FirstScanPage(f *File) PageID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return f.firstPage
}

// PageList returns the IDs of the file's data pages in chain order. The
// list is served from an in-memory cache maintained as the file grows; if
// the file was re-opened from disk (cache cold) the chain is walked once —
// at normal page-read cost — and cached. The parallel executor partitions
// this list into page-range morsels so independent workers can read
// disjoint pages concurrently instead of chasing NextPage links serially.
func (s *ObjectStore) PageList(f *File) ([]PageID, error) {
	s.mu.RLock()
	if len(f.pages) == int(f.numPages) {
		out := append([]PageID(nil), f.pages...)
		s.mu.RUnlock()
		return out, nil
	}
	s.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(f.pages) == int(f.numPages) {
		return append([]PageID(nil), f.pages...), nil
	}
	pages := make([]PageID, 0, f.numPages)
	for pid := f.firstPage; pid != 0; {
		pg, err := s.bp.Fetch(pid)
		if err != nil {
			return nil, err
		}
		next := pg.NextPage()
		if err := s.bp.Unpin(pid, false); err != nil {
			return nil, err
		}
		pages = append(pages, pid)
		pid = next
	}
	f.pages = pages
	return append([]PageID(nil), pages...), nil
}

// ScanPage reads the records of one page of the file and the ID of the next
// page in the chain (0 at the end). It is the pull-based primitive both the
// callback Scan and the streaming extent cursors are built on: a caller that
// stops asking for pages stops paying for page reads.
func (s *ObjectStore) ScanPage(f *File, pid PageID) ([]ScanRecord, PageID, error) {
	var hits []ScanRecord
	var overflowHeads []ScanRecord

	s.mu.RLock()
	defer s.mu.RUnlock()
	pg, err := s.bp.Fetch(pid)
	if err != nil {
		return nil, 0, err
	}
	pg.Slots(func(slot SlotID, rec []byte) bool {
		oid := MakeOID(f.ID, pid, slot) | s.tag
		switch rec[0] {
		case recForward:
			// Migrated away: the record surfaces at its destination page,
			// under its original OID, via the relocation frame there.
			s.learnForward(oid, forwardDst(rec))
			return true
		case recRelocated:
			oid = relocOrig(rec)
			rec = rec[relocHeadSize:]
		}
		switch rec[0] {
		case recPlain:
			cp := make([]byte, len(rec)-1)
			copy(cp, rec[1:])
			hits = append(hits, ScanRecord{oid, cp})
		case recOverflow:
			cp := make([]byte, len(rec))
			copy(cp, rec)
			overflowHeads = append(overflowHeads, ScanRecord{oid, cp})
		}
		return true
	})
	next := pg.NextPage()
	if err := s.bp.Unpin(pid, false); err != nil {
		return nil, 0, err
	}
	// Reassemble large records before releasing the lock.
	for _, h := range overflowHeads {
		total := binary.LittleEndian.Uint32(h.Data[1:])
		first := PageID(binary.LittleEndian.Uint32(h.Data[5:]))
		data, err := s.readOverflow(first, int(total))
		if err != nil {
			return nil, 0, err
		}
		hits = append(hits, ScanRecord{h.OID, data})
	}
	return hits, next, nil
}

// ScanPageRecs is ScanPage without the per-record copy, batched: fn
// receives a whole page's plain records at once, their Data slices aliasing
// the pinned page frame, so a consumer pays no allocation per record AND
// can amortize per-page work (a batched object-cache probe, one shard lock
// per page instead of one per record) across the batch. fn must consume the
// bytes before returning and must not call back into the store — it runs
// under the store's read lock. fn is called at most twice: once with the
// plain records in slot order (page pinned), then once with the reassembled
// overflow records (heap copies by construction), preserving ScanPage's
// record order. scratch is the caller's reusable backing array for the
// plain-record batch; the possibly-grown slice is returned for the next
// call. With readahead true the chain's next page is requested from the
// prefetcher before the records are delivered, so loading page i+1 overlaps
// fn's work on page i.
func (s *ObjectStore) ScanPageRecs(f *File, pid PageID, readahead bool, scratch []ScanRecord, fn func(recs []ScanRecord) error) (PageID, []ScanRecord, error) {
	scratch = scratch[:0]
	var overflowHeads []ScanRecord

	s.mu.RLock()
	defer s.mu.RUnlock()
	pg, err := s.bp.Fetch(pid)
	if err != nil {
		return 0, scratch, err
	}
	next := pg.NextPage()
	if readahead && next != 0 {
		s.Prefetch(next)
	}
	pg.Slots(func(slot SlotID, rec []byte) bool {
		oid := MakeOID(f.ID, pid, slot) | s.tag
		switch rec[0] {
		case recForward:
			s.learnForward(oid, forwardDst(rec))
			return true
		case recRelocated:
			oid = relocOrig(rec)
			rec = rec[relocHeadSize:]
		}
		switch rec[0] {
		case recPlain:
			scratch = append(scratch, ScanRecord{oid, rec[1:]})
		case recOverflow:
			cp := make([]byte, len(rec))
			copy(cp, rec)
			overflowHeads = append(overflowHeads, ScanRecord{oid, cp})
		}
		return true
	})
	var fnErr error
	if len(scratch) > 0 {
		fnErr = fn(scratch)
	}
	if err := s.bp.Unpin(pid, false); err != nil {
		return 0, scratch, err
	}
	if fnErr != nil {
		return 0, scratch, fnErr
	}
	if len(overflowHeads) > 0 {
		for i, h := range overflowHeads {
			total := binary.LittleEndian.Uint32(h.Data[1:])
			first := PageID(binary.LittleEndian.Uint32(h.Data[5:]))
			data, err := s.readOverflow(first, int(total))
			if err != nil {
				return 0, scratch, err
			}
			overflowHeads[i] = ScanRecord{h.OID, data}
		}
		if err := fn(overflowHeads); err != nil {
			return 0, scratch, err
		}
	}
	return next, scratch, nil
}

// Scan iterates the records of the file in page-chain order. fn receives
// each record's OID and a copy of its payload; returning false stops the
// scan early. The store's lock is NOT held while fn runs, so callbacks may
// freely Get/Insert/Update other records; structural changes to the pages
// being scanned made from inside the callback may or may not be visible to
// the remainder of the scan.
func (s *ObjectStore) Scan(f *File, fn func(OID, []byte) bool) error {
	pid := s.FirstScanPage(f)
	for pid != 0 {
		hits, next, err := s.ScanPage(f, pid)
		if err != nil {
			return err
		}
		for _, h := range hits {
			if !fn(h.OID, h.Data) {
				return nil
			}
		}
		pid = next
	}
	return nil
}

// appendPage grows the file by one page, returned pinned.
func (s *ObjectStore) appendPage(f *File) (*Page, error) {
	pg, err := s.bp.NewPage()
	if err != nil {
		return nil, err
	}
	pg.InitHeap(PageKindHeap)
	if f.lastPage != 0 {
		prev, err := s.bp.Fetch(f.lastPage)
		if err != nil {
			s.bp.Unpin(pg.ID, true)
			return nil, err
		}
		prev.SetNextPage(pg.ID)
		if err := s.bp.Unpin(f.lastPage, true); err != nil {
			s.bp.Unpin(pg.ID, true)
			return nil, err
		}
	} else {
		f.firstPage = pg.ID
	}
	f.lastPage = pg.ID
	// Keep the page-list cache current while it is complete; a cache that
	// went cold (file re-opened from disk) stays cold until PageList walks
	// the chain once.
	if len(f.pages) == int(f.numPages) {
		f.pages = append(f.pages, pg.ID)
	}
	f.numPages++
	if err := s.fm.syncDir(f); err != nil {
		s.bp.Unpin(pg.ID, true)
		return nil, err
	}
	return pg, nil
}

// writeOverflow stores data across a fresh overflow chain and returns the
// first page of the chain.
func (s *ObjectStore) writeOverflow(data []byte) (PageID, error) {
	chunk := s.bp.Disk().PageSize() - pageHeaderSize - 2
	var first, prev PageID
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		pg, err := s.bp.NewPage()
		if err != nil {
			return 0, err
		}
		buf := pg.Bytes()
		for i := range buf {
			buf[i] = 0
		}
		pg.setU16(offPageKind, PageKindOverflow)
		binary.LittleEndian.PutUint16(buf[pageHeaderSize:], uint16(end-off))
		copy(buf[pageHeaderSize+2:], data[off:end])
		if first == 0 {
			first = pg.ID
		}
		if prev != 0 {
			pp, err := s.bp.Fetch(prev)
			if err != nil {
				s.bp.Unpin(pg.ID, true)
				return 0, err
			}
			pp.SetNextPage(pg.ID)
			if err := s.bp.Unpin(prev, true); err != nil {
				s.bp.Unpin(pg.ID, true)
				return 0, err
			}
		}
		prev = pg.ID
		if err := s.bp.Unpin(pg.ID, true); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// readOverflow reassembles a record of the given total length from the chain
// starting at first.
func (s *ObjectStore) readOverflow(first PageID, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	for pid := first; pid != 0; {
		pg, err := s.bp.Fetch(pid)
		if err != nil {
			return nil, err
		}
		buf := pg.Bytes()
		n := int(binary.LittleEndian.Uint16(buf[pageHeaderSize:]))
		out = append(out, buf[pageHeaderSize+2:pageHeaderSize+2+n]...)
		next := pg.NextPage()
		if err := s.bp.Unpin(pid, false); err != nil {
			return nil, err
		}
		pid = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: overflow chain yielded %d bytes, want %d", len(out), total)
	}
	return out, nil
}

// --- Store interface -------------------------------------------------------
//
// An ObjectStore is the one-shard Store: every extent has exactly one part,
// backed by a heap file in this store's file manager. The File-granular
// methods above remain the low-level API (indexes and tests use them); the
// extent methods below are what the catalog programs against.

// Shards reports one shard.
func (s *ObjectStore) Shards() int { return 1 }

// CreateExtent creates the named extent as a single heap file.
func (s *ObjectStore) CreateExtent(name string) (*Extent, error) {
	f, err := s.fm.CreateFile(name)
	if err != nil {
		return nil, err
	}
	return &Extent{Name: name, parts: []*File{f}}, nil
}

// OpenExtent opens an existing extent by directory name.
func (s *ObjectStore) OpenExtent(name string) (*Extent, error) {
	f, err := s.fm.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return &Extent{Name: name, parts: []*File{f}}, nil
}

// DropExtent removes the extent's file and data pages.
func (s *ObjectStore) DropExtent(name string) error {
	return s.fm.DropFile(name)
}

// InsertExtent stores data as a new record of the extent.
func (s *ObjectStore) InsertExtent(e *Extent, data []byte) (OID, error) {
	return s.Insert(e.parts[0], data)
}

// ScanExtent iterates the extent's records in page-chain order.
func (s *ObjectStore) ScanExtent(e *Extent, fn func(OID, []byte) bool) error {
	return s.Scan(e.parts[0], fn)
}

// PartFirstPage returns the first data page of the extent's only part.
func (s *ObjectStore) PartFirstPage(e *Extent, part int) PageID {
	return s.FirstScanPage(e.parts[part])
}

// PartPageList returns the extent's data pages in chain order.
func (s *ObjectStore) PartPageList(e *Extent, part int) ([]PageID, error) {
	return s.PageList(e.parts[part])
}

// ScanPartRecs reads one page of the extent, batch-delivering its records.
func (s *ObjectStore) ScanPartRecs(e *Extent, part int, pid PageID, readahead bool, scratch []ScanRecord, fn func(recs []ScanRecord) error) (PageID, []ScanRecord, error) {
	return s.ScanPageRecs(e.parts[part], pid, readahead, scratch, fn)
}

// PrefetchPart requests background loads of the extent's pages.
func (s *ObjectStore) PrefetchPart(part int, ids ...PageID) {
	s.Prefetch(ids...)
}

// ReadCount returns the cumulative simulated page reads of this store's disk.
func (s *ObjectStore) ReadCount() int64 {
	return s.bp.Disk().Stats().Reads()
}

// ShardReads returns the per-shard read counters (one entry).
func (s *ObjectStore) ShardReads() []int64 {
	return []int64{s.ReadCount()}
}

// freeOverflow releases every page of an overflow chain.
func (s *ObjectStore) freeOverflow(first PageID) error {
	for pid := first; pid != 0; {
		pg, err := s.bp.Fetch(pid)
		if err != nil {
			return err
		}
		next := pg.NextPage()
		if err := s.bp.Unpin(pid, false); err != nil {
			return err
		}
		s.bp.Drop(pid)
		if err := s.bp.Disk().FreePage(pid); err != nil {
			return err
		}
		pid = next
	}
	return nil
}
