package algebra

import (
	"fmt"

	"mood/internal/catalog"
	"mood/internal/expr"
	"mood/internal/object"
	"mood/internal/storage"
)

// Select selects the rows of arg satisfying predicate P, with the return
// types of Table 1:
//
//	arg     Extent          Set   List   Named Obj.
//	return  Extent or Set   Set   List   Named Obj.
//
// asSet controls the Extent case's choice between Extent and Set output.
func (a *Algebra) Select(arg *Collection, p expr.Expr, asSet bool) (*Collection, error) {
	outKind := arg.Kind
	if arg.Kind == ExtentKind && asSet {
		outKind = SetKind
	}
	out := &Collection{Kind: outKind, Name: arg.Name, Class: arg.Class}
	env := a.env()
	for i := range arg.Rows {
		row := arg.Rows[i]
		ok, err := a.evalRow(row, p, env)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// env builds the expression environment backed by this algebra's catalog.
func (a *Algebra) env() *expr.Env {
	return &expr.Env{
		Resolve: a.Cat.Resolver(),
		Invoke:  a.Invoke,
	}
}

// evalRow evaluates a predicate with the row's bindings in scope,
// materializing bound values lazily.
func (a *Algebra) evalRow(row Row, p expr.Expr, base *expr.Env) (bool, error) {
	env := &expr.Env{
		Vars:    make(map[string]object.Value, len(row.Vars)),
		OIDs:    make(map[string]storage.OID, len(row.Vars)),
		Resolve: base.Resolve,
		Invoke:  base.Invoke,
	}
	for name, b := range row.Vars {
		if err := a.materialize(&b); err != nil {
			return false, err
		}
		env.Vars[name] = b.Val
		env.OIDs[name] = b.OID
	}
	return expr.EvalBool(p, env)
}

// SimplePredicate is the triplet <P1, θ, oprnd> of Section 4.1 restricted
// to an indexable form: an atomic attribute of the bound class compared
// with a constant.
type SimplePredicate struct {
	Attribute string
	Op        expr.CmpOp
	Constant  object.Value
	Constant2 object.Value // BETWEEN upper bound
	Between   bool
}

// IndSel selects the set of object identifiers satisfying the simple
// predicate from the extent of the named class (or group of extents: the
// IS-A closure) using an index of the requested kind — IndSel(arg,
// index_type, P). The return value is a Set of object identifiers, per the
// paper. ErrNoIndex is returned when no index of that kind exists on the
// attribute.
func (a *Algebra) IndSel(class, bindName string, indexKind catalog.IndexKind, p SimplePredicate) (*Collection, error) {
	ix := a.Cat.IndexOn(class, p.Attribute)
	if ix == nil || ix.Kind != indexKind {
		return nil, fmt.Errorf("%w: %s on %s.%s", ErrNoIndex, indexKind, class, p.Attribute)
	}
	var oids []storage.OID
	var err error
	switch {
	case p.Between:
		oids, err = ix.RangeLookup(p.Constant, p.Constant2)
	case p.Op == expr.OpEq:
		oids, err = ix.Lookup(p.Constant)
	case p.Op == expr.OpGe || p.Op == expr.OpGt:
		oids, err = ix.RangeLookup(p.Constant, object.Null)
	case p.Op == expr.OpLe || p.Op == expr.OpLt:
		oids, err = ix.RangeLookup(object.Null, p.Constant)
	default:
		return nil, fmt.Errorf("algebra: IndSel cannot use an index for %s", p.Op)
	}
	if err != nil {
		return nil, err
	}
	// Strict bounds and key truncation require re-checking the base
	// predicate against the stored objects.
	out := &Collection{Kind: SetKind, Name: bindName, Class: class}
	seen := map[storage.OID]bool{}
	pred := a.predicateExpr(bindName, p)
	env := a.env()
	for _, oid := range oids {
		if seen[oid] {
			continue
		}
		seen[oid] = true
		v, _, err := a.Cat.GetObject(oid)
		if err != nil {
			return nil, err
		}
		row := Row{Vars: map[string]Bound{bindName: {OID: oid, Val: v}}}
		ok, err := a.evalRow(row, pred, env)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, Row{Vars: map[string]Bound{bindName: {OID: oid}}})
		}
	}
	return out, nil
}

// predicateExpr rebuilds the expression form of a simple predicate.
func (a *Algebra) predicateExpr(bindName string, p SimplePredicate) expr.Expr {
	attr := expr.Path(bindName, p.Attribute)
	if p.Between {
		return &expr.Between{E: attr, Lo: &expr.Const{Val: p.Constant}, Hi: &expr.Const{Val: p.Constant2}}
	}
	return &expr.Cmp{Op: p.Op, L: attr, R: &expr.Const{Val: p.Constant}}
}
