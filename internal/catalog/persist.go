package catalog

import (
	"fmt"

	"mood/internal/object"
	"mood/internal/storage"
)

// The catalog persists itself into two system files (Figure 2.2 shows the
// catalog stored on ESM): SYS.MoodsType holds one record per class/type with
// its attributes (MoodsAttribute) and method signatures (MoodsFunction)
// nested inside; SYS.MoodsIndex holds one record per secondary index.
// Records are ordinary encoded object values, so the catalog is browsable
// with the same machinery as user data — exactly how MoodView uses it.

// typeToValue encodes a type descriptor as a value.
func typeToValue(t *object.Type) object.Value {
	if t == nil {
		return object.Null
	}
	v := object.NewTuple(
		[]string{"kind", "name", "strlen", "target"},
		[]object.Value{
			object.NewInt(int32(t.Kind)),
			object.NewString(t.Name),
			object.NewInt(int32(t.StrLen)),
			object.NewString(t.Target),
		},
	)
	if t.Elem != nil {
		v.SetField("elem", typeToValue(t.Elem))
	}
	if len(t.Fields) > 0 {
		fl := object.Value{Kind: object.KindList}
		for _, f := range t.Fields {
			fl.Append(object.NewTuple(
				[]string{"name", "type"},
				[]object.Value{object.NewString(f.Name), typeToValue(f.Type)},
			))
		}
		v.SetField("fields", fl)
	}
	return v
}

// valueToType decodes a type descriptor.
func valueToType(v object.Value) (*object.Type, error) {
	if v.IsNull() {
		return nil, nil
	}
	kindV, _ := v.Field("kind")
	nameV, _ := v.Field("name")
	lenV, _ := v.Field("strlen")
	targetV, _ := v.Field("target")
	t := &object.Type{
		Kind:   object.Kind(kindV.Int),
		Name:   nameV.Str,
		StrLen: int(lenV.Int),
		Target: targetV.Str,
	}
	if ev, ok := v.Field("elem"); ok && !ev.IsNull() {
		elem, err := valueToType(ev)
		if err != nil {
			return nil, err
		}
		t.Elem = elem
	}
	if fl, ok := v.Field("fields"); ok {
		for _, fv := range fl.Elems {
			fn, _ := fv.Field("name")
			ft, _ := fv.Field("type")
			ty, err := valueToType(ft)
			if err != nil {
				return nil, err
			}
			t.Fields = append(t.Fields, object.Field{Name: fn.Str, Type: ty})
		}
	}
	return t, nil
}

func methodToValue(m *MethodSig) object.Value {
	pn := object.Value{Kind: object.KindList}
	pt := object.Value{Kind: object.KindList}
	for i := range m.ParamNames {
		pn.Append(object.NewString(m.ParamNames[i]))
		pt.Append(typeToValue(m.ParamTypes[i]))
	}
	return object.NewTuple(
		[]string{"name", "paramNames", "paramTypes", "returnType"},
		[]object.Value{object.NewString(m.Name), pn, pt, typeToValue(m.ReturnType)},
	)
}

func valueToMethod(class string, v object.Value) (*MethodSig, error) {
	nameV, _ := v.Field("name")
	m := &MethodSig{Class: class, Name: nameV.Str}
	pn, _ := v.Field("paramNames")
	pt, _ := v.Field("paramTypes")
	for i := range pn.Elems {
		m.ParamNames = append(m.ParamNames, pn.Elems[i].Str)
		ty, err := valueToType(pt.Elems[i])
		if err != nil {
			return nil, err
		}
		m.ParamTypes = append(m.ParamTypes, ty)
	}
	rv, _ := v.Field("returnType")
	rt, err := valueToType(rv)
	if err != nil {
		return nil, err
	}
	m.ReturnType = rt
	return m, nil
}

func classToValue(cl *Class) object.Value {
	supers := object.Value{Kind: object.KindList}
	for _, s := range cl.Supers {
		supers.Append(object.NewString(s))
	}
	methods := object.Value{Kind: object.KindList}
	for _, m := range cl.Methods {
		methods.Append(methodToValue(m))
	}
	return object.NewTuple(
		[]string{"id", "name", "isClass", "tuple", "supers", "methods"},
		[]object.Value{
			object.NewInt(int32(cl.ID)),
			object.NewString(cl.Name),
			object.NewBool(cl.IsClass),
			typeToValue(cl.Tuple),
			supers,
			methods,
		},
	)
}

// persistClass writes or rewrites the class's catalog record.
func (c *Catalog) persistClass(cl *Class) error {
	data := object.Marshal(classToValue(cl))
	if oid, ok := c.sysOIDs[cl.Name]; ok {
		return c.store.Update(oid, data)
	}
	oid, err := c.store.InsertExtent(c.sysFile, data)
	if err != nil {
		return err
	}
	c.sysOIDs[cl.Name] = oid
	return nil
}

func indexToValue(ix *Index) object.Value {
	return object.NewTuple(
		[]string{"name", "class", "attribute", "kind", "unique", "keySize"},
		[]object.Value{
			object.NewString(ix.Name),
			object.NewString(ix.Class),
			object.NewString(ix.Attribute),
			object.NewInt(int32(ix.Kind)),
			object.NewBool(ix.Unique),
			object.NewInt(int32(ix.KeySize)),
		},
	)
}

func (c *Catalog) persistIndex(ix *Index) error {
	data := object.Marshal(indexToValue(ix))
	if oid, ok := c.idxOIDs[ix.Name]; ok {
		return c.store.Update(oid, data)
	}
	oid, err := c.store.InsertExtent(c.idxFile, data)
	if err != nil {
		return err
	}
	c.idxOIDs[ix.Name] = oid
	return nil
}

// Open reloads a catalog previously created over the same store. Class
// definitions and index metadata are read back from the system files;
// indexes are rebuilt from the extents (index pages are not WAL-protected,
// so a rebuild is the recovery story for them). A sharded catalog must be
// re-opened with a store of the same shard count — the shard field of every
// persisted OID routes to the disk that holds the record.
func Open(store storage.Store) (*Catalog, error) {
	return open(store, true)
}

// OpenLite reloads the catalog without rebuilding secondary indexes: a
// read-only view suitable for measurement harnesses that re-open the disk
// behind a deliberately tiny buffer pool (index rebuilds need several
// pinned pages at once). Index metadata records are left untouched on disk.
func OpenLite(store storage.Store) (*Catalog, error) {
	return open(store, false)
}

func open(store storage.Store, rebuildIndexes bool) (*Catalog, error) {
	c := &Catalog{
		store:   store,
		classes: make(map[string]*Class),
		byID:    make(map[int]*Class),
		nextID:  1,
		indexes: make(map[string]*Index),
		sysOIDs: make(map[string]storage.OID),
		idxOIDs: make(map[string]storage.OID),
	}
	var err error
	if c.sysFile, err = store.OpenExtent("SYS.MoodsType"); err != nil {
		return nil, err
	}
	if c.idxFile, err = store.OpenExtent("SYS.MoodsIndex"); err != nil {
		return nil, err
	}
	var derr error
	err = store.ScanExtent(c.sysFile, func(oid storage.OID, data []byte) bool {
		v, err := object.Unmarshal(data)
		if err != nil {
			derr = err
			return false
		}
		cl, err := valueToClass(v)
		if err != nil {
			derr = err
			return false
		}
		if cl.IsClass {
			ext, err := store.OpenExtent("extent." + cl.Name)
			if err != nil {
				derr = fmt.Errorf("catalog: class %s lost its extent: %w", cl.Name, err)
				return false
			}
			cl.extent = ext
		}
		c.classes[cl.Name] = cl
		c.byID[cl.ID] = cl
		c.sysOIDs[cl.Name] = oid
		if cl.ID >= c.nextID {
			c.nextID = cl.ID + 1
		}
		return true
	})
	if err == nil {
		err = derr
	}
	if err != nil {
		return nil, err
	}

	if !rebuildIndexes {
		return c, nil
	}
	// Reload index metadata, then rebuild each index from its extent.
	type idxMeta struct {
		oid storage.OID
		val object.Value
	}
	var metas []idxMeta
	err = store.ScanExtent(c.idxFile, func(oid storage.OID, data []byte) bool {
		v, err := object.Unmarshal(data)
		if err != nil {
			derr = err
			return false
		}
		metas = append(metas, idxMeta{oid, v})
		return true
	})
	if err == nil {
		err = derr
	}
	if err != nil {
		return nil, err
	}
	for _, m := range metas {
		nameV, _ := m.val.Field("name")
		classV, _ := m.val.Field("class")
		attrV, _ := m.val.Field("attribute")
		kindV, _ := m.val.Field("kind")
		uniqueV, _ := m.val.Field("unique")
		// Drop the stale record; CreateIndex re-persists.
		if err := store.Delete(m.oid); err != nil {
			return nil, err
		}
		if _, err := c.CreateIndex(nameV.Str, classV.Str, attrV.Str, IndexKind(kindV.Int), uniqueV.Bool()); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func valueToClass(v object.Value) (*Class, error) {
	idV, _ := v.Field("id")
	nameV, _ := v.Field("name")
	isClassV, _ := v.Field("isClass")
	tupleV, _ := v.Field("tuple")
	tuple, err := valueToType(tupleV)
	if err != nil {
		return nil, err
	}
	cl := &Class{
		ID:      int(idV.Int),
		Name:    nameV.Str,
		IsClass: isClassV.Bool(),
		Tuple:   tuple,
	}
	supersV, _ := v.Field("supers")
	for _, s := range supersV.Elems {
		cl.Supers = append(cl.Supers, s.Str)
	}
	methodsV, _ := v.Field("methods")
	for _, mv := range methodsV.Elems {
		m, err := valueToMethod(cl.Name, mv)
		if err != nil {
			return nil, err
		}
		cl.Methods = append(cl.Methods, m)
	}
	return cl, nil
}
