package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mood/internal/exec"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/sql"
)

// planCache maps normalized statement shapes (literals replaced by '?') to
// optimized access plans, so re-executing a statement that differs only in
// its constants skips parse and optimize entirely: the hot path is a map
// lookup plus a bind pass that clones the cached plan with the fresh values.
//
// Invalidation is by epoch: DDL, index/BJI builds and RefreshStats bump it,
// and lookups discard entries stamped with an older epoch. A plan optimized
// concurrently with a bump is likewise discarded at store time, so a cached
// plan never refers to a dropped class or index. Data mutations do NOT bump
// the epoch — cached plans are generic plans carrying their first binding's
// cost estimates (see Options.PlanCache).
type planCache struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	epoch   uint64 // guarded by mu

	hits   atomic.Int64
	misses atomic.Int64
}

type planEntry struct {
	plan    optimizer.Plan
	explain *optimizer.Explain
	nparams int
	epoch   uint64
}

func newPlanCache() *planCache {
	return &planCache{entries: map[string]*planEntry{}}
}

// lookup returns the entry cached for shape (nil on miss) and the current
// epoch, which a subsequent store must echo back. A hit requires the
// parameter count to match — same shape text with a different literal split
// cannot share a plan. Hit/miss counters are the callers' job: only
// cacheable SELECTs should count, and lookup cannot tell.
func (pc *planCache) lookup(shape string, nparams int) (*planEntry, uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	ent := pc.entries[shape]
	if ent != nil && (ent.epoch != pc.epoch || ent.nparams != nparams) {
		delete(pc.entries, shape)
		ent = nil
	}
	return ent, pc.epoch
}

// store caches a plan optimized under epoch; it is discarded if the catalog
// changed while the optimizer ran.
func (pc *planCache) store(shape string, plan optimizer.Plan, explain *optimizer.Explain, nparams int, epoch uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if epoch != pc.epoch {
		return
	}
	pc.entries[shape] = &planEntry{plan: plan, explain: explain, nparams: nparams, epoch: epoch}
}

// invalidate drops every cached plan by advancing the epoch.
func (pc *planCache) invalidate() {
	pc.mu.Lock()
	pc.epoch++
	pc.entries = map[string]*planEntry{}
	pc.mu.Unlock()
}

// Stats returns the lifetime hit/miss counters.
func (pc *planCache) Stats() (hits, misses int64) {
	return pc.hits.Load(), pc.misses.Load()
}

// invalidatePlans bumps the plan-cache epoch (no-op when the cache is off).
func (db *DB) invalidatePlans() {
	if db.plans != nil {
		db.plans.invalidate()
	}
}

// PlanCacheStats returns the plan cache's lifetime hit/miss counters (zeros
// when the cache is off).
func (db *DB) PlanCacheStats() (hits, misses int64) {
	if db.plans == nil {
		return 0, 0
	}
	return db.plans.Stats()
}

// executeCached is Execute's plan-cache fast path. The bool reports whether
// the statement was handled here; false sends the caller to the plain parse
// path (shapes that cannot be parameterized, or inputs whose errors should
// be reported by the ordinary parser).
func (db *DB) executeCached(statement string) (*Result, bool, error) {
	shape, params, err := sql.Shape(statement)
	if err != nil {
		return nil, false, nil
	}
	if ent, _ := db.plans.lookup(shape, len(params)); ent != nil {
		db.plans.hits.Add(1)
		plan := optimizer.Bind(ent.plan, params)
		db.lastMu.Lock()
		db.LastPlan, db.LastExplain = plan, ent.explain
		db.lastMu.Unlock()
		coll, err := db.Exec.Execute(plan)
		if err != nil {
			return nil, true, err
		}
		return exec.Extract(coll), true, nil
	}
	// Miss: parse with literals tagged as parameters so the optimized plan
	// is re-bindable, cache it, then run it on this statement's values.
	stmt, shape, params, err := sql.ParseShaped(statement)
	if err != nil {
		if sql.IsShapeMismatch(err) {
			return nil, false, nil
		}
		return nil, true, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		// Only SELECT plans are cacheable; run the statement as parsed
		// (Const.Param tags are inert outside the optimizer).
		res, err := db.ExecuteStmt(stmt)
		return res, true, err
	}
	db.plans.misses.Add(1)
	_, epoch := db.plans.lookup(shape, len(params)) // re-read epoch for the store
	plan, err := db.optimize(sel)
	if err != nil {
		return nil, true, err
	}
	db.lastMu.Lock()
	explain := db.LastExplain
	db.lastMu.Unlock()
	db.plans.store(shape, plan, explain, len(params), epoch)
	coll, err := db.Exec.Execute(plan)
	if err != nil {
		return nil, true, err
	}
	return exec.Extract(coll), true, nil
}

// Prepared is a statement compiled once and executable many times with fresh
// constants. Query's warm path performs no lexing, parsing or optimization —
// only a cache lookup and a plan bind.
type Prepared struct {
	db      *DB
	src     string
	shape   string
	nparams int
}

// Prepare parses and optimizes a SELECT once, caches the plan under its
// normalized shape, and returns a handle whose Query re-binds the plan to
// fresh parameter values. Requires Options.PlanCache.
func (db *DB) Prepare(statement string) (*Prepared, error) {
	if db.plans == nil {
		return nil, fmt.Errorf("kernel: Prepare requires Options.PlanCache")
	}
	stmt, shape, params, err := sql.ParseShaped(statement)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("kernel: only SELECT statements can be prepared, got %T", stmt)
	}
	db.plans.misses.Add(1)
	_, epoch := db.plans.lookup(shape, len(params))
	plan, err := db.optimize(sel)
	if err != nil {
		return nil, err
	}
	db.lastMu.Lock()
	explain := db.LastExplain
	db.lastMu.Unlock()
	db.plans.store(shape, plan, explain, len(params), epoch)
	return &Prepared{db: db, src: statement, shape: shape, nparams: len(params)}, nil
}

// Query executes the prepared statement with params substituted for the
// original literals, in their order of appearance. If DDL invalidated the
// cached plan since Prepare, the statement is transparently re-prepared.
func (p *Prepared) Query(params ...object.Value) (*Result, error) {
	if len(params) != p.nparams {
		return nil, fmt.Errorf("kernel: prepared statement wants %d parameters, got %d", p.nparams, len(params))
	}
	ent, _ := p.db.plans.lookup(p.shape, p.nparams)
	if ent == nil {
		np, err := p.db.Prepare(p.src)
		if err != nil {
			return nil, err
		}
		*p = *np
		ent, _ = p.db.plans.lookup(p.shape, p.nparams)
		if ent == nil {
			return nil, fmt.Errorf("kernel: prepared plan evicted during re-prepare")
		}
	} else {
		p.db.plans.hits.Add(1)
	}
	plan := optimizer.Bind(ent.plan, params)
	coll, err := p.db.Exec.Execute(plan)
	if err != nil {
		return nil, err
	}
	return exec.Extract(coll), nil
}
