package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted-page layout.
//
// A page is a fixed-size byte array with a small header, a slot directory
// growing down from the end, and record data growing up from the header:
//
//	+------------------+--------------------------+----------------+
//	| header (16 B)    | records ->     ...  <- free space  | slots |
//	+------------------+--------------------------+----------------+
//
// Header fields (little endian):
//
//	0..4   pageLSN      (uint32) — recovery LSN of the last update
//	4..6   numSlots     (uint16)
//	6..8   freeStart    (uint16) — offset of first free byte after records
//	8..12  nextPage     (uint32) — chain link used by files and overflow
//	12..14 freeBytes    (uint16) — reclaimable bytes (including slot holes)
//	14..16 pageKind     (uint16)
//
// Each slot is 4 bytes: offset (uint16), length (uint16). A slot with
// offset == 0 is a tombstone; record data never starts at offset 0 because
// the header occupies it.
const (
	pageHeaderSize = 16
	slotSize       = 4

	offLSN       = 0
	offNumSlots  = 4
	offFreeStart = 6
	offNextPage  = 8
	offFreeBytes = 12
	offPageKind  = 14
)

// Kinds of pages, stored in the page header so that recovery and debugging
// tools can interpret raw pages.
const (
	PageKindFree uint16 = iota
	PageKindHeap        // slotted record page
	PageKindBTree
	PageKindHash
	PageKindOverflow
	PageKindMeta
	PageKindRTree
)

// SlotID identifies a record within a page.
type SlotID uint16

// Page wraps one block worth of bytes with slotted-page accessors. A Page
// does not own its buffer: buffer-pool frames hand out Pages aliasing the
// frame memory, so mutations are visible to the pool (which tracks dirtiness
// explicitly via MarkDirty).
type Page struct {
	ID  PageID
	buf []byte
}

// NewPage wraps buf, which must be a full block, as a Page.
func NewPage(id PageID, buf []byte) *Page {
	return &Page{ID: id, buf: buf}
}

// Bytes returns the underlying buffer.
func (p *Page) Bytes() []byte { return p.buf }

// InitHeap formats the page as an empty slotted heap page of the given kind.
func (p *Page) InitHeap(kind uint16) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setU16(offFreeStart, pageHeaderSize)
	p.setU16(offPageKind, kind)
}

// Kind returns the page kind from the header.
func (p *Page) Kind() uint16 { return p.u16(offPageKind) }

// LSN returns the recovery LSN of the last update applied to the page.
func (p *Page) LSN() uint32 { return p.u32(offLSN) }

// SetLSN records the recovery LSN of the last update applied to the page.
func (p *Page) SetLSN(lsn uint32) { p.setU32(offLSN, lsn) }

// NextPage returns the chain link (0 if none).
func (p *Page) NextPage() PageID { return PageID(p.u32(offNextPage)) }

// SetNextPage sets the chain link.
func (p *Page) SetNextPage(id PageID) { p.setU32(offNextPage, uint32(id)) }

// NumSlots returns the number of slot entries, including tombstones.
func (p *Page) NumSlots() int { return int(p.u16(offNumSlots)) }

// FreeSpace returns the number of bytes available for a new record,
// accounting for the slot entry it would need.
func (p *Page) FreeSpace() int {
	free := p.slotDirStart() - int(p.u16(offFreeStart)) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// FreeSpaceAfterCompaction additionally counts the holes left by deleted or
// shrunk records, which Compact can reclaim.
func (p *Page) FreeSpaceAfterCompaction() int {
	return p.FreeSpace() + int(p.u16(offFreeBytes))
}

// Insert stores rec in the page and returns its slot. It fails with
// ErrPageFull if the record cannot fit even after compaction.
func (p *Page) Insert(rec []byte) (SlotID, error) {
	need := len(rec)
	if need > p.FreeSpace() {
		if need > p.FreeSpaceAfterCompaction() {
			return 0, ErrPageFull
		}
		p.Compact()
	}
	// Reuse a tombstone slot if one exists, else append a new slot.
	slot := -1
	for i := 0; i < p.NumSlots(); i++ {
		if p.slotOffset(i) == 0 {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = p.NumSlots()
		p.setU16(offNumSlots, uint16(slot+1))
	}
	start := int(p.u16(offFreeStart))
	copy(p.buf[start:], rec)
	p.setSlot(slot, uint16(start), uint16(len(rec)))
	p.setU16(offFreeStart, uint16(start+len(rec)))
	return SlotID(slot), nil
}

// Get returns the record stored in the slot. The returned slice aliases the
// page buffer; callers that retain it across unpin must copy.
func (p *Page) Get(slot SlotID) ([]byte, error) {
	if int(slot) >= p.NumSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range (page %d has %d)", slot, p.ID, p.NumSlots())
	}
	off := p.slotOffset(int(slot))
	if off == 0 {
		return nil, ErrRecordGone
	}
	ln := p.slotLength(int(slot))
	return p.buf[off : off+ln], nil
}

// Delete tombstones the slot and accounts its bytes as reclaimable.
func (p *Page) Delete(slot SlotID) error {
	if int(slot) >= p.NumSlots() {
		return fmt.Errorf("storage: delete of slot %d out of range on page %d", slot, p.ID)
	}
	off := p.slotOffset(int(slot))
	if off == 0 {
		return ErrRecordGone
	}
	ln := p.slotLength(int(slot))
	p.setSlot(int(slot), 0, 0)
	p.setU16(offFreeBytes, p.u16(offFreeBytes)+uint16(ln))
	return nil
}

// Update replaces the record in the slot. If the new record does not fit in
// place it is relocated within the page; ErrPageFull is returned if the page
// cannot hold it at all (callers then move the record and leave a forward
// pointer, see store.go).
func (p *Page) Update(slot SlotID, rec []byte) error {
	if int(slot) >= p.NumSlots() {
		return fmt.Errorf("storage: update of slot %d out of range on page %d", slot, p.ID)
	}
	off := p.slotOffset(int(slot))
	if off == 0 {
		return ErrRecordGone
	}
	ln := p.slotLength(int(slot))
	if len(rec) <= ln {
		copy(p.buf[off:], rec)
		p.setSlot(int(slot), uint16(off), uint16(len(rec)))
		p.setU16(offFreeBytes, p.u16(offFreeBytes)+uint16(ln-len(rec)))
		return nil
	}
	// Relocate within the page.
	need := len(rec)
	if need > p.FreeSpace()+slotSize { // slot already exists; no new slot needed
		if need > p.FreeSpaceAfterCompaction()+slotSize {
			return ErrPageFull
		}
		p.setSlot(int(slot), 0, 0)
		p.setU16(offFreeBytes, p.u16(offFreeBytes)+uint16(ln))
		p.Compact()
	} else {
		p.setSlot(int(slot), 0, 0)
		p.setU16(offFreeBytes, p.u16(offFreeBytes)+uint16(ln))
	}
	start := int(p.u16(offFreeStart))
	if start+need > p.slotDirStart() {
		p.Compact()
		start = int(p.u16(offFreeStart))
		if start+need > p.slotDirStart() {
			return ErrPageFull
		}
	}
	copy(p.buf[start:], rec)
	p.setSlot(int(slot), uint16(start), uint16(need))
	p.setU16(offFreeStart, uint16(start+need))
	return nil
}

// Compact rewrites live records contiguously after the header, eliminating
// holes. Slot numbers are stable across compaction.
func (p *Page) Compact() {
	n := p.NumSlots()
	type live struct {
		slot int
		data []byte
	}
	records := make([]live, 0, n)
	for i := 0; i < n; i++ {
		off := p.slotOffset(i)
		if off == 0 {
			continue
		}
		ln := p.slotLength(i)
		cp := make([]byte, ln)
		copy(cp, p.buf[off:off+ln])
		records = append(records, live{i, cp})
	}
	start := pageHeaderSize
	for _, r := range records {
		copy(p.buf[start:], r.data)
		p.setSlot(r.slot, uint16(start), uint16(len(r.data)))
		start += len(r.data)
	}
	p.setU16(offFreeStart, uint16(start))
	p.setU16(offFreeBytes, 0)
}

// Slots iterates over live slots, calling fn with each slot id and record.
// The record slice aliases the page buffer.
func (p *Page) Slots(fn func(SlotID, []byte) bool) {
	for i := 0; i < p.NumSlots(); i++ {
		off := p.slotOffset(i)
		if off == 0 {
			continue
		}
		ln := p.slotLength(i)
		if !fn(SlotID(i), p.buf[off:off+ln]) {
			return
		}
	}
}

// LiveRecords returns the number of non-tombstoned slots.
func (p *Page) LiveRecords() int {
	n := 0
	for i := 0; i < p.NumSlots(); i++ {
		if p.slotOffset(i) != 0 {
			n++
		}
	}
	return n
}

func (p *Page) slotDirStart() int { return len(p.buf) - p.NumSlots()*slotSize }

func (p *Page) slotOffset(i int) int {
	base := len(p.buf) - (i+1)*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:]))
}

func (p *Page) slotLength(i int) int {
	base := len(p.buf) - (i+1)*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p *Page) setSlot(i int, off, ln uint16) {
	base := len(p.buf) - (i+1)*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], off)
	binary.LittleEndian.PutUint16(p.buf[base+2:], ln)
}

func (p *Page) u16(off int) uint16       { return binary.LittleEndian.Uint16(p.buf[off:]) }
func (p *Page) setU16(off int, v uint16) { binary.LittleEndian.PutUint16(p.buf[off:], v) }
func (p *Page) u32(off int) uint32       { return binary.LittleEndian.Uint32(p.buf[off:]) }
func (p *Page) setU32(off int, v uint32) { binary.LittleEndian.PutUint32(p.buf[off:], v) }

// MaxRecordSize returns the largest record a freshly formatted page of the
// given block size can hold.
func MaxRecordSize(blockSize int) int {
	return blockSize - pageHeaderSize - slotSize
}
