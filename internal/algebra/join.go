package algebra

import (
	"fmt"
	"sort"

	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/joinindex"
	"mood/internal/object"
	"mood/internal/storage"
)

// JoinSpec describes an implicit join between two collections: the join
// predicate left.Attribute = right.self, realized by one of the four
// strategies of Section 3.2 / 8.3 (forward traversal, indexed join through
// a binary join index, backward traversal, pointer-based hash-partition
// join).
type JoinSpec struct {
	Method    cost.JoinMethod
	LeftVar   string // range variable on the referencing side (C)
	Attribute string // A, the reference attribute of C
	RightVar  string // range variable on the referenced side (D)
	// Index supplies the binary join index for BinaryJoinIndex joins.
	Index *joinindex.BinaryJoinIndex
	// Extra is an optional residual predicate applied to merged rows.
	Extra expr.Expr
}

func (s JoinSpec) String() string {
	return fmt.Sprintf("%s.%s = %s.self [%s]", s.LeftVar, s.Attribute, s.RightVar, s.Method)
}

// joinKind implements Table 2's return-type matrix. With the kinds ranked
// Extent > Set > List > NamedObj, the result is the higher-ranked of the
// two argument kinds.
func joinKind(a, b Kind) Kind {
	rank := func(k Kind) int {
		switch k {
		case ExtentKind:
			return 3
		case SetKind:
			return 2
		case ListKind:
			return 1
		default:
			return 0
		}
	}
	if rank(a) >= rank(b) {
		return a
	}
	return b
}

// Join joins left and right with the spec's strategy and returns the merged
// rows, typed per Table 2. All four strategies produce the same rows (up to
// order); they differ in the physical access pattern, which the simulated
// disk accounts.
func (a *Algebra) Join(left, right *Collection, spec JoinSpec) (*Collection, error) {
	if spec.LeftVar == "" {
		spec.LeftVar = left.Name
	}
	if spec.RightVar == "" {
		spec.RightVar = right.Name
	}
	out := &Collection{
		Kind:  joinKind(left.Kind, right.Kind),
		Name:  spec.RightVar,
		Class: right.Class,
	}

	var rows []Row
	var err error
	switch spec.Method {
	case cost.ForwardTraversal:
		rows, err = a.joinForward(left, right, spec)
	case cost.BackwardTraversal:
		rows, err = a.joinBackward(left, right, spec)
	case cost.BinaryJoinIndex:
		rows, err = a.joinBJI(left, right, spec)
	case cost.HashPartition:
		rows, err = a.joinHashPartition(left, right, spec)
	case cost.FusionJoin:
		rows, err = a.joinFusion(left, right, spec)
	default:
		err = fmt.Errorf("algebra: unknown join method %v", spec.Method)
	}
	if err != nil {
		return nil, err
	}

	if spec.Extra != nil {
		re := a.NewRowEvaluator()
		kept := rows[:0]
		for _, r := range rows {
			ok, err := re.EvalBool(r, spec.Extra)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	out.Rows = rows
	return out, nil
}

// refsOf extracts the reference targets of the join attribute (one for a
// plain reference, several for set/list-valued attributes).
func refsOf(v object.Value, attr string) []storage.OID {
	av, ok := v.Field(attr)
	if !ok || av.IsNull() {
		return nil
	}
	switch av.Kind {
	case object.KindReference:
		if av.Ref.IsNil() {
			return nil
		}
		return []storage.OID{av.Ref}
	case object.KindSet, object.KindList:
		var out []storage.OID
		for _, e := range av.Elems {
			if e.Kind == object.KindReference && !e.Ref.IsNil() {
				out = append(out, e.Ref)
			}
		}
		return out
	}
	return nil
}

// rowsByOID indexes a collection's rows by the OID of the given variable.
func rowsByOID(c *Collection, varName string) map[storage.OID][]Row {
	m := make(map[storage.OID][]Row, len(c.Rows))
	for _, r := range c.Rows {
		if b, ok := r.Vars[varName]; ok && !b.OID.IsNil() {
			m[b.OID] = append(m[b.OID], r)
		}
	}
	return m
}

// joinForward drives the left side: for each left row, the reference is
// chased (a random access per referenced object — the paper's
// ftc = RNDCOST(nbpg_c) + RNDCOST(k_c·fan)) and matched against the right
// rows.
func (a *Algebra) joinForward(left, right *Collection, spec JoinSpec) ([]Row, error) {
	rightBy := rowsByOID(right, spec.RightVar)
	var out []Row
	for i := range left.Rows {
		lrow := left.Rows[i]
		lb := lrow.Vars[spec.LeftVar]
		if err := a.materialize(&lb); err != nil {
			return nil, err
		}
		lrow.Vars[spec.LeftVar] = lb
		for _, ref := range refsOf(lb.Val, spec.Attribute) {
			// Chase the pointer: the physical dereference happens even if
			// the right side later rejects the object, as in real forward
			// traversal.
			val, _, err := a.Cat.GetObject(ref)
			if err != nil {
				return nil, err
			}
			for _, rrow := range rightBy[ref] {
				merged := lrow.merged(rrow)
				rb := merged.Vars[spec.RightVar]
				rb.Val = val
				merged.Vars[spec.RightVar] = rb
				out = append(out, merged)
			}
		}
	}
	return out, nil
}

// joinBackward drives the right side: the extent of the left class is
// scanned sequentially (btc = SEQCOST(nbpages(C)) + CPU + SEQCOST(D)), each
// object's reference compared against the selected right objects, and rows
// restricted to the left collection.
func (a *Algebra) joinBackward(left, right *Collection, spec JoinSpec) ([]Row, error) {
	rightBy := rowsByOID(right, spec.RightVar)
	leftBy := rowsByOID(left, spec.LeftVar)
	if left.Class == "" {
		return nil, fmt.Errorf("algebra: backward traversal needs the left class")
	}
	var out []Row
	err := a.Cat.ScanClosure(left.Class, nil, func(oid storage.OID, v object.Value) bool {
		lrows, inLeft := leftBy[oid]
		if !inLeft {
			return true
		}
		for _, ref := range refsOf(v, spec.Attribute) {
			rrows, hit := rightBy[ref]
			if !hit {
				continue
			}
			for _, lrow := range lrows {
				lb := lrow.Vars[spec.LeftVar]
				lb.Val = v
				lrow.Vars[spec.LeftVar] = lb
				for _, rrow := range rrows {
					out = append(out, lrow.merged(rrow))
				}
			}
		}
		return true
	})
	return out, err
}

// joinBJI probes the binary join index backward from each right object
// (bjc = INDCOST(k)).
func (a *Algebra) joinBJI(left, right *Collection, spec JoinSpec) ([]Row, error) {
	if spec.Index == nil {
		return nil, fmt.Errorf("%w: binary join index for %s.%s", ErrNoIndex, left.Class, spec.Attribute)
	}
	leftBy := rowsByOID(left, spec.LeftVar)
	var out []Row
	for i := range right.Rows {
		rrow := right.Rows[i]
		rb := rrow.Vars[spec.RightVar]
		sources, err := spec.Index.Backward(rb.OID)
		if err != nil {
			return nil, err
		}
		for _, src := range sources {
			for _, lrow := range leftBy[src] {
				out = append(out, lrow.merged(rrow))
			}
		}
	}
	return out, nil
}

// joinHashPartition hashes the left rows on the pointer field and then
// chases each *distinct* pointer once (hhc = 3·(k_c/|C|)·SEQCOST(nbpages(C))
// + RNDCOST(nbpg)), so shared targets are fetched a single time.
func (a *Algebra) joinHashPartition(left, right *Collection, spec JoinSpec) ([]Row, error) {
	rightBy := rowsByOID(right, spec.RightVar)
	// Partition phase: group left rows by referenced OID.
	partitions := make(map[storage.OID][]Row)
	for i := range left.Rows {
		lrow := left.Rows[i]
		lb := lrow.Vars[spec.LeftVar]
		if err := a.materialize(&lb); err != nil {
			return nil, err
		}
		lrow.Vars[spec.LeftVar] = lb
		for _, ref := range refsOf(lb.Val, spec.Attribute) {
			partitions[ref] = append(partitions[ref], lrow)
		}
	}
	// Probe phase: each distinct pointer dereferenced once, in OID order —
	// partitioning clusters the probes so every page of D is visited once,
	// the locality the hhc formula's nbpg term models.
	refs := make([]storage.OID, 0, len(partitions))
	for ref := range partitions {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	var out []Row
	for _, ref := range refs {
		lrows := partitions[ref]
		rrows, hit := rightBy[ref]
		if !hit {
			continue
		}
		val, _, err := a.Cat.GetObject(ref)
		if err != nil {
			return nil, err
		}
		for _, lrow := range lrows {
			for _, rrow := range rrows {
				merged := lrow.merged(rrow)
				rb := merged.Vars[spec.RightVar]
				rb.Val = val
				merged.Vars[spec.RightVar] = rb
				out = append(out, merged)
			}
		}
	}
	return out, nil
}

// joinFusion is the collection-fused navigation join (the Odra fusion
// algorithm): the whole left input is partitioned on the pointer field, the
// distinct targets are dereferenced in ONE page-ordered batch (fc =
// RNDCOST(nbpg_c) + RNDCOST(nbpg(D,α))), and the merged rows are
// synthesized from the fetched values — the target extent itself is never
// scanned.
func (a *Algebra) joinFusion(left, right *Collection, spec JoinSpec) ([]Row, error) {
	rightBy := rowsByOID(right, spec.RightVar)
	partitions := make(map[storage.OID][]Row)
	for i := range left.Rows {
		lrow := left.Rows[i]
		lb := lrow.Vars[spec.LeftVar]
		if err := a.materialize(&lb); err != nil {
			return nil, err
		}
		lrow.Vars[spec.LeftVar] = lb
		for _, ref := range refsOf(lb.Val, spec.Attribute) {
			partitions[ref] = append(partitions[ref], lrow)
		}
	}
	refs := make([]storage.OID, 0, len(partitions))
	for ref := range partitions {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	vals, _, err := a.Cat.GetObjects(refs)
	if err != nil {
		return nil, err
	}
	var out []Row
	for i, ref := range refs {
		rrows, hit := rightBy[ref]
		if !hit {
			continue
		}
		for _, lrow := range partitions[ref] {
			for _, rrow := range rrows {
				merged := lrow.merged(rrow)
				rb := merged.Vars[spec.RightVar]
				rb.Val = vals[i]
				merged.Vars[spec.RightVar] = rb
				out = append(out, merged)
			}
		}
	}
	return out, nil
}
