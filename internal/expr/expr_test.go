package expr

import (
	"errors"
	"testing"

	"mood/internal/object"
	"mood/internal/storage"
)

func i(v int32) Expr      { return &Const{Val: object.NewInt(v)} }
func f(v float64) Expr    { return &Const{Val: object.NewFloat(v)} }
func s(v string) Expr     { return &Const{Val: object.NewString(v)} }
func long(v int64) Expr   { return &Const{Val: object.NewLong(v)} }
func boolean(v bool) Expr { return &Const{Val: object.NewBool(v)} }

func eval(t *testing.T, e Expr, env *Env) object.Value {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

// truth coerces an evaluation result to bool (Bool takes a pointer
// receiver, so chained call results need a home first).
func truth(v object.Value) bool { return v.Bool() }

func TestOperandDataTypeExample(t *testing.T) {
	// The paper's Section 2 example:
	//   OperandDataType x(INT16), y(INT32), z(DOUBLE);
	//   x=10; y=13;
	//   z = (x*3 + x%3) * (y/4*5)
	// Integer arithmetic: x*3=30, x%3=1, sum=31; y/4=3 (truncating), *5=15;
	// 31*15=465; assignment casts to double.
	env := &Env{Vars: map[string]object.Value{
		"x": object.NewInt(10),
		"y": object.NewInt(13),
	}}
	e := &Arith{Op: OpMul,
		L: &Arith{Op: OpAdd,
			L: &Arith{Op: OpMul, L: &Var{Name: "x"}, R: i(3)},
			R: &Arith{Op: OpMod, L: &Var{Name: "x"}, R: i(3)},
		},
		R: &Arith{Op: OpMul,
			L: &Arith{Op: OpDiv, L: &Var{Name: "y"}, R: i(4)},
			R: i(5),
		},
	}
	v := eval(t, e, env)
	if v.Kind != object.KindInteger || v.Int != 465 {
		t.Errorf("expression = %s, want 465", v)
	}
	z, err := Cast(v, object.TFloat)
	if err != nil || z.Kind != object.KindFloat || z.Flt != 465 {
		t.Errorf("cast to double = %s %v", z, err)
	}
}

func TestArithmeticPromotion(t *testing.T) {
	cases := []struct {
		e    Expr
		kind object.Kind
		num  float64
	}{
		{&Arith{Op: OpAdd, L: i(2), R: i(3)}, object.KindInteger, 5},
		{&Arith{Op: OpAdd, L: i(2), R: long(3)}, object.KindLongInteger, 5},
		{&Arith{Op: OpAdd, L: i(2), R: f(0.5)}, object.KindFloat, 2.5},
		{&Arith{Op: OpDiv, L: i(7), R: i(2)}, object.KindInteger, 3},
		{&Arith{Op: OpDiv, L: f(7), R: i(2)}, object.KindFloat, 3.5},
		{&Arith{Op: OpMod, L: i(7), R: i(4)}, object.KindInteger, 3},
		{&Arith{Op: OpSub, L: i(2), R: i(5)}, object.KindInteger, -3},
		{&Arith{Op: OpAdd, L: s("foo"), R: s("bar")}, object.KindString, 0},
	}
	for _, c := range cases {
		v := eval(t, c.e, nil)
		if v.Kind != c.kind {
			t.Errorf("%s: kind %s, want %s", c.e, v.Kind, c.kind)
			continue
		}
		if c.kind == object.KindString {
			if v.Str != "foobar" {
				t.Errorf("%s = %q", c.e, v.Str)
			}
			continue
		}
		got, _ := v.AsFloat()
		if got != c.num {
			t.Errorf("%s = %v, want %v", c.e, got, c.num)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := (&Arith{Op: OpDiv, L: i(1), R: i(0)}).Eval(nil); !errors.Is(err, ErrDivByZero) {
		t.Errorf("int div by zero = %v", err)
	}
	if _, err := (&Arith{Op: OpDiv, L: f(1), R: f(0)}).Eval(nil); !errors.Is(err, ErrDivByZero) {
		t.Errorf("float div by zero = %v", err)
	}
	if _, err := (&Arith{Op: OpMod, L: f(1), R: f(2)}).Eval(nil); !errors.Is(err, ErrType) {
		t.Errorf("float mod = %v", err)
	}
	if _, err := (&Arith{Op: OpAdd, L: s("x"), R: i(1)}).Eval(nil); !errors.Is(err, ErrType) {
		t.Errorf("string+int = %v", err)
	}
	if _, err := (&Var{Name: "missing"}).Eval(&Env{Vars: map[string]object.Value{}}); !errors.Is(err, ErrUnbound) {
		t.Errorf("unbound = %v", err)
	}
}

func TestNullPropagation(t *testing.T) {
	null := &Const{Val: object.Null}
	if v := eval(t, &Arith{Op: OpAdd, L: null, R: i(1)}, nil); !v.IsNull() {
		t.Error("null + 1 != null")
	}
	// Comparisons with null are false.
	if v := eval(t, &Cmp{Op: OpEq, L: null, R: i(1)}, nil); v.Bool() {
		t.Error("null = 1 is true")
	}
	if v := eval(t, &Cmp{Op: OpNe, L: null, R: i(1)}, nil); v.Bool() {
		t.Error("null <> 1 is true")
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r Expr
		want bool
	}{
		{OpEq, i(1), i(1), true},
		{OpNe, i(1), i(2), true},
		{OpGt, i(5), i(4), true},
		{OpLt, i(5), i(4), false},
		{OpGe, i(4), i(4), true},
		{OpLe, i(4), i(5), true},
		{OpEq, s("AUTOMATIC"), s("AUTOMATIC"), true},
		{OpLt, s("abc"), s("abd"), true},
		{OpEq, f(2.0), i(2), true},
	}
	for _, c := range cases {
		v := eval(t, &Cmp{Op: c.op, L: c.l, R: c.r}, nil)
		if v.Bool() != c.want {
			t.Errorf("%s %s %s = %v, want %v", c.l, c.op, c.r, v.Bool(), c.want)
		}
	}
}

func TestCmpNegate(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpGe, OpLe, OpGt, OpLt}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("double negate of %s changed it", op)
		}
	}
	// Semantics: x op y  XOR  x !op y for comparable values.
	for _, op := range ops {
		a := truth(eval(t, &Cmp{Op: op, L: i(3), R: i(7)}, nil))
		b := truth(eval(t, &Cmp{Op: op.Negate(), L: i(3), R: i(7)}, nil))
		if a == b {
			t.Errorf("%s and its negation agree", op)
		}
	}
}

func TestLogicShortCircuit(t *testing.T) {
	// The right side blows up if evaluated.
	bomb := &Arith{Op: OpDiv, L: i(1), R: i(0)}
	v := eval(t, &Logic{Op: OpAnd, L: boolean(false), R: bomb}, nil)
	if v.Bool() {
		t.Error("false AND x = true")
	}
	v = eval(t, &Logic{Op: OpOr, L: boolean(true), R: bomb}, nil)
	if !v.Bool() {
		t.Error("true OR x = false")
	}
	// Without short-circuit the bomb fires.
	if _, err := (&Logic{Op: OpAnd, L: boolean(true), R: bomb}).Eval(nil); err == nil {
		t.Error("true AND bomb did not evaluate the bomb")
	}
	if v := eval(t, &Not{E: boolean(false)}, nil); !v.Bool() {
		t.Error("NOT false = false")
	}
}

func TestBetween(t *testing.T) {
	b := &Between{E: i(5), Lo: i(1), Hi: i(10)}
	if !truth(eval(t, b, nil)) {
		t.Error("5 BETWEEN 1 AND 10 = false")
	}
	b = &Between{E: i(0), Lo: i(1), Hi: i(10)}
	if truth(eval(t, b, nil)) {
		t.Error("0 BETWEEN 1 AND 10 = true")
	}
}

func TestPathTraversalDereferences(t *testing.T) {
	// v.drivetrain.transmission with drivetrain a reference.
	dtOID := storage.MakeOID(2, 1, 0)
	store := map[storage.OID]object.Value{
		dtOID: object.NewTuple([]string{"transmission"}, []object.Value{object.NewString("AUTOMATIC")}),
	}
	env := &Env{
		Vars: map[string]object.Value{
			"v": object.NewTuple([]string{"drivetrain"}, []object.Value{object.NewRef(dtOID)}),
		},
		Resolve: func(oid storage.OID) (object.Value, error) { return store[oid], nil },
	}
	e := &Cmp{Op: OpEq, L: Path("v", "drivetrain", "transmission"), R: s("AUTOMATIC")}
	if !truth(eval(t, e, env)) {
		t.Error("path predicate false")
	}
	// Null reference mid-path yields null, predicate false, no error.
	env.Vars["v"] = object.NewTuple([]string{"drivetrain"}, []object.Value{object.NewRef(storage.NilOID)})
	if truth(eval(t, e, env)) {
		t.Error("null path compared true")
	}
	// Missing attribute reads as null.
	env.Vars["v"] = object.NewTuple([]string{"other"}, []object.Value{object.NewInt(1)})
	if truth(eval(t, e, env)) {
		t.Error("missing attribute compared true")
	}
}

func TestCallDispatch(t *testing.T) {
	env := &Env{
		Vars: map[string]object.Value{
			"v": object.NewTuple([]string{"weight"}, []object.Value{object.NewInt(1000)}),
		},
		Invoke: func(self object.Value, _ storage.OID, method string, args []object.Value) (object.Value, error) {
			if method != "lbweight" {
				t.Errorf("method = %q", method)
			}
			w, _ := self.Field("weight")
			return object.NewInt(int32(float64(w.Int) * 2.2075)), nil
		},
	}
	e := &Cmp{Op: OpGt, L: &Call{Base: &Var{Name: "v"}, Method: "lbweight"}, R: i(2000)}
	if !truth(eval(t, e, env)) {
		t.Error("method predicate false")
	}
	// No dispatcher -> error.
	if _, err := (&Call{Base: &Var{Name: "v"}, Method: "m"}).Eval(&Env{Vars: env.Vars}); err == nil {
		t.Error("call without dispatcher succeeded")
	}
}

func TestNeg(t *testing.T) {
	if v := eval(t, &Neg{E: i(5)}, nil); v.Int != -5 {
		t.Errorf("-5 = %v", v)
	}
	if v := eval(t, &Neg{E: f(2.5)}, nil); v.Flt != -2.5 {
		t.Errorf("-2.5 = %v", v)
	}
	if _, err := (&Neg{E: s("x")}).Eval(nil); !errors.Is(err, ErrType) {
		t.Errorf("-string = %v", err)
	}
}

func TestCast(t *testing.T) {
	v, err := Cast(object.NewFloat(3.9), object.TInteger)
	if err != nil || v.Int != 3 {
		t.Errorf("float->int = %v %v", v, err)
	}
	v, err = Cast(object.NewInt(7), object.TFloat)
	if err != nil || v.Flt != 7 {
		t.Errorf("int->float = %v %v", v, err)
	}
	v, err = Cast(object.NewString("abcdef"), object.StringN(3))
	if err != nil || v.Str != "abc" {
		t.Errorf("string truncation = %v %v", v, err)
	}
	if _, err := Cast(object.NewString("x"), object.TInteger); err == nil {
		t.Error("string->int accepted")
	}
}

func TestStringRendering(t *testing.T) {
	e := &Logic{Op: OpAnd,
		L: &Cmp{Op: OpEq, L: Path("c", "drivetrain", "transmission"), R: s("AUTOMATIC")},
		R: &Cmp{Op: OpGt, L: Path("v", "cylinders"), R: i(4)},
	}
	want := `(c.drivetrain.transmission = "AUTOMATIC" AND v.cylinders > 4)`
	if got := e.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestEnvBind(t *testing.T) {
	base := &Env{Vars: map[string]object.Value{"a": object.NewInt(1)}}
	child := base.Bind("b", object.NewInt(2), storage.MakeOID(1, 1, 1))
	if _, ok := base.Vars["b"]; ok {
		t.Error("Bind mutated parent")
	}
	if v := child.Vars["a"]; v.Int != 1 {
		t.Error("Bind lost parent bindings")
	}
	if child.OIDs["b"] != storage.MakeOID(1, 1, 1) {
		t.Error("Bind lost OID")
	}
}
