package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// CacheInvalidator is the hook the object store drives to keep a decoded-
// object cache (internal/objcache) coherent: Invalidate fires under the
// store's exclusive lock on every Update/Delete, Reset on wholesale page
// rewrites (WAL recovery). The store depends only on this interface so the
// storage layer stays free of the cache's types.
type CacheInvalidator interface {
	Invalidate(OID)
	Reset()
}

// SetInvalidator installs the cache invalidation hook. Must be called
// before the store is shared across goroutines (kernel.Open does).
func (s *ObjectStore) SetInvalidator(inv CacheInvalidator) { s.inv = inv }

// SetPrefetcher attaches a page prefetcher consulted by FetchBatch and the
// extent scans. Must be called before the store is shared across
// goroutines; nil detaches.
func (s *ObjectStore) SetPrefetcher(pf *Prefetcher) { s.pf = pf }

// Prefetch requests asynchronous pre-loading of pages into the buffer pool.
// A no-op without an attached prefetcher, so scan paths call it
// unconditionally.
func (s *ObjectStore) Prefetch(ids ...PageID) {
	if s.pf != nil {
		s.pf.Request(ids...)
	}
}

func (s *ObjectStore) invalidate(oid OID) {
	if s.inv != nil {
		s.inv.Invalidate(oid)
	}
}

// FetchBatch resolves many OIDs in one pass: the requests are sorted by
// (page, slot) — OIDs order that way numerically — and each distinct page is
// fetched exactly once, instead of once per record as a per-OID Get loop
// does. With a prefetcher attached the distinct page set is requested up
// front, so later page loads overlap the slot copies of earlier ones.
// Results are returned parallel to the input order; duplicates are allowed.
//
// This is the collection-at-a-time reference resolution the traversal joins
// use: the Section 6.1 worst case charges RNDCOST per referenced object,
// while the batch path pays one random access per distinct target page —
// the NbPg(nbpages, k) figure the cost model's batch mode predicts.
func (s *ObjectStore) FetchBatch(oids []OID) ([][]byte, error) {
	out := make([][]byte, len(oids))
	if len(oids) == 0 {
		return out, nil
	}
	idx := make([]int, len(oids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return oids[idx[a]] < oids[idx[b]] })

	s.mu.RLock()
	defer s.mu.RUnlock()

	if s.pf != nil {
		var pages []PageID
		for k, i := range idx {
			if p := oids[i].Page(); k == 0 || p != oids[idx[k-1]].Page() {
				pages = append(pages, p)
			}
		}
		s.pf.Request(pages...)
	}

	// Overflow heads are collected during the page pass and the chains
	// reassembled afterwards, so the primary pages are each pinned once.
	type ovf struct {
		i     int
		first PageID
		total int
	}
	var ovfs []ovf
	for k := 0; k < len(idx); {
		pid := oids[idx[k]].Page()
		pg, err := s.bp.Fetch(pid)
		if err != nil {
			return nil, err
		}
		for ; k < len(idx) && oids[idx[k]].Page() == pid; k++ {
			i := idx[k]
			rec, gerr := pg.Get(oids[i].Slot())
			if gerr != nil {
				s.bp.Unpin(pid, false)
				return nil, gerr
			}
			switch rec[0] {
			case recPlain:
				cp := make([]byte, len(rec)-1)
				copy(cp, rec[1:])
				out[i] = cp
			case recOverflow:
				ovfs = append(ovfs, ovf{
					i:     i,
					total: int(binary.LittleEndian.Uint32(rec[1:])),
					first: PageID(binary.LittleEndian.Uint32(rec[5:])),
				})
			default:
				s.bp.Unpin(pid, false)
				return nil, fmt.Errorf("storage: corrupt record tag %d at %s", rec[0], oids[i])
			}
		}
		if err := s.bp.Unpin(pid, false); err != nil {
			return nil, err
		}
	}
	for _, o := range ovfs {
		data, err := s.readOverflow(o.first, o.total)
		if err != nil {
			return nil, err
		}
		out[o.i] = data
	}
	return out, nil
}
