package storage

import "fmt"

// OID is a physical object identifier: file, page and slot packed into a
// 64-bit word. MOOD objects carry their OID for the lifetime of the object;
// references between objects are stored as OIDs and chased by the Deref
// algebra operator and the traversal joins.
//
// Layout (most significant first): 16-bit file, 32-bit page, 16-bit slot.
type OID uint64

// NilOID is the null reference.
const NilOID OID = 0

// MakeOID packs the coordinates of a record into an OID.
func MakeOID(file FileID, page PageID, slot SlotID) OID {
	return OID(uint64(file)<<48 | uint64(page)<<16 | uint64(slot))
}

// File returns the file component.
func (o OID) File() FileID { return FileID(o >> 48) }

// Page returns the page component.
func (o OID) Page() PageID { return PageID(o >> 16) }

// Slot returns the slot component.
func (o OID) Slot() SlotID { return SlotID(o) }

// IsNil reports whether the OID is the null reference.
func (o OID) IsNil() bool { return o == NilOID }

func (o OID) String() string {
	if o.IsNil() {
		return "oid(nil)"
	}
	return fmt.Sprintf("oid(%d.%d.%d)", o.File(), o.Page(), o.Slot())
}
