package kernel

import (
	"os"
	"path/filepath"
	"testing"

	"mood/internal/exec"
	"mood/internal/optimizer"
	"mood/internal/sql"
)

// TestGoldenSuiteStreamingDifferential replays the full MOODSQL golden
// script and, for every SELECT, runs the optimized plan through the
// vectorized streaming pipeline, the row-at-a-time interpreter (RowMode,
// compilation off), the retained materializing executor, and the
// morsel-parallel rewrite, demanding identical rendered results and a
// stable LastPlan rendering. DDL and DML statements execute normally so
// each query sees the same database state the golden run does.
func TestGoldenSuiteStreamingDifferential(t *testing.T) {
	script, err := os.ReadFile(filepath.Join("testdata", "basic.moodsql"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A shallow executor copy sharing the algebra and function registry but
	// pulling rows one at a time with compiled predicates disabled.
	rowExec := *db.Exec
	rowExec.RowMode = true

	selects := 0
	for _, stmt := range splitScript(string(script)) {
		parsed, err := sql.Parse(stmt)
		if err != nil {
			continue // the golden file records parse errors; skip here
		}
		sel, isSelect := parsed.(*sql.Select)
		if !isSelect {
			if _, err := db.ExecuteStmt(parsed); err != nil {
				continue // intentional error cases advance no state
			}
			continue
		}

		plan, err := db.optimize(sel)
		if err != nil {
			continue
		}
		renderBefore := optimizer.Render(plan)

		stream, err := db.Exec.Execute(plan)
		if err != nil {
			t.Fatalf("%s: streaming execute: %v", stmt, err)
		}
		eager, err := db.Exec.ExecuteMaterialized(plan)
		if err != nil {
			t.Fatalf("%s: materialized execute: %v", stmt, err)
		}
		got, want := renderResult(exec.Extract(stream)), renderResult(exec.Extract(eager))
		if got != want {
			t.Errorf("%s: paths disagree:\n--- streaming ---\n%s--- materialized ---\n%s", stmt, got, want)
		}
		rows, err := rowExec.Execute(plan)
		if err != nil {
			t.Fatalf("%s: row-mode execute: %v", stmt, err)
		}
		if got := renderResult(exec.Extract(rows)); got != want {
			t.Errorf("%s: row mode disagrees:\n--- row mode ---\n%s--- materialized ---\n%s", stmt, got, want)
		}
		st, err := db.Stats()
		if err != nil {
			t.Fatal(err)
		}
		par, err := db.Exec.Execute(optimizer.Parallelize(plan, 4, -1, st))
		if err != nil {
			t.Fatalf("%s: parallel execute: %v", stmt, err)
		}
		if got := renderResult(exec.Extract(par)); got != want {
			t.Errorf("%s: parallel rewrite disagrees:\n--- parallel ---\n%s--- materialized ---\n%s", stmt, got, want)
		}
		if after := optimizer.Render(db.LastPlan); after != renderBefore {
			t.Errorf("%s: LastPlan rendering changed across execution:\n--- before ---\n%s--- after ---\n%s",
				stmt, renderBefore, after)
		}
		selects++
	}
	if selects == 0 {
		t.Fatal("golden script produced no successfully planned SELECTs")
	}
}
