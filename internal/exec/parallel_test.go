package exec

import (
	"strings"
	"testing"

	"mood/internal/optimizer"
	"mood/internal/sql"
)

// parallelQueries are plan shapes covering every exchangeable operator:
// bare extent scan, scan with fused selection, index selection, hash-join
// chains, and pipeline breakers (group/sort/dup-elim) fed by exchanges.
var parallelQueries = []string{
	`SELECT v FROM Vehicle v`,
	`SELECT v FROM Vehicle v WHERE v.weight > 1200`,
	`SELECT v FROM Vehicle v WHERE v.id < 100 AND v.weight BETWEEN 900 AND 2400`,
	`SELECT v FROM Vehicle v WHERE v.drivetrain.engine.cylinders = 2`,
	`SELECT v FROM Vehicle v WHERE v.drivetrain.transmission = 'MANUAL' ORDER BY v.weight DESC`,
	`SELECT c FROM Company c WHERE c.location = 'Tokyo'`,
}

// parallelizedPlan runs the fixture's optimizer, then rewrites the plan for
// four workers with no page threshold so every exchangeable shape exchanges.
func (f *fixture) parallelizedPlan(t *testing.T, query string) (optimizer.Plan, optimizer.Plan) {
	t.Helper()
	st, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse %s: %v", query, err)
	}
	plan, _, err := f.opt.Optimize(st.(*sql.Select))
	if err != nil {
		t.Fatalf("optimize %s: %v", query, err)
	}
	pplan := optimizer.Parallelize(plan, 4, -1, f.opt.Stats)
	return plan, pplan
}

// TestParallelStreamingMatchesSerial holds the three execution paths equal
// on the same logical plan: serial streaming, parallel streaming (the
// Parallelize rewrite of the identical plan), and the materialized reference
// path over the parallel plan. Row values and row order must all agree.
func TestParallelStreamingMatchesSerial(t *testing.T) {
	f := defaultFixture(t)
	exchanged := 0
	for _, q := range parallelQueries {
		plan, pplan := f.parallelizedPlan(t, q)
		if strings.Contains(optimizer.Render(pplan), "EXCHANGE(") {
			exchanged++
		}
		serial, err := f.ex.Execute(plan)
		if err != nil {
			t.Fatalf("serial execute %s: %v", q, err)
		}
		par, err := f.ex.Execute(pplan)
		if err != nil {
			t.Fatalf("parallel execute %s: %v\nplan:\n%s", q, err, optimizer.Render(pplan))
		}
		assertCollectionsEqual(t, "parallel vs serial: "+q, par, serial)
		mat, err := f.ex.ExecuteMaterialized(pplan)
		if err != nil {
			t.Fatalf("materialized execute %s: %v", q, err)
		}
		assertCollectionsEqual(t, "parallel vs materialized: "+q, par, mat)
	}
	if exchanged == 0 {
		t.Fatal("no query produced an EXCHANGE node; the parallel path was never exercised")
	}
}

// TestParallelEarlyClose stops a parallel pipeline after a handful of rows:
// Close must terminate the worker pool without leaking goroutines or pinned
// pages, and further Next calls are not required to work.
func TestParallelEarlyClose(t *testing.T) {
	f := defaultFixture(t)
	_, pplan := f.parallelizedPlan(t, `SELECT v FROM Vehicle v`)
	op, err := f.ex.Compile(pplan)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := op.Next(); err != nil || !ok {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if err := op.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if n := f.pool.PinnedPages(); n != 0 {
		t.Errorf("early-closed parallel pipeline left %d pages pinned", n)
	}
}

// TestParallelExplainAnalyzeWorkerStats checks EXPLAIN ANALYZE on a parallel
// plan: the page total still equals the simulated-disk read delta (workers
// drain eagerly inside the instrumented Open), the exchange node reports one
// stat per worker, and the per-worker rows sum to the node's row count.
func TestParallelExplainAnalyzeWorkerStats(t *testing.T) {
	f := defaultFixture(t)
	f.ex.Pages = func() int64 { return f.pool.Disk().Stats().Reads() }
	defer func() { f.ex.Pages = nil }()

	_, pplan := f.parallelizedPlan(t, `SELECT v FROM Vehicle v WHERE v.weight > 1200`)
	if !strings.Contains(optimizer.Render(pplan), "EXCHANGE(") {
		t.Fatalf("expected an EXCHANGE node in:\n%s", optimizer.Render(pplan))
	}
	if err := f.pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	scope := f.pool.Disk().Scope()
	coll, an, err := f.ex.ExecuteAnalyzed(pplan)
	if err != nil {
		t.Fatal(err)
	}
	delta := scope.Delta()
	if an.TotalPages != delta.Reads() {
		t.Errorf("analysis reports %d pages, DiskSim delta is %d", an.TotalPages, delta.Reads())
	}
	if an.TotalPages == 0 {
		t.Error("parallel plan read zero pages from a cold pool")
	}

	var exch *OpReport
	var walk func(r *OpReport)
	walk = func(r *OpReport) {
		if len(r.Workers) > 0 {
			exch = r
		}
		for _, k := range r.Kids {
			walk(k)
		}
	}
	walk(an.Root)
	if exch == nil {
		t.Fatalf("no report node carries worker stats:\n%s", an.Render())
	}
	if len(exch.Workers) > 4 {
		t.Errorf("exchange reports %d workers, plan asked for 4", len(exch.Workers))
	}
	var rows int64
	for _, w := range exch.Workers {
		rows += w.Rows
	}
	if rows != exch.RowsOut {
		t.Errorf("per-worker rows sum to %d, node emitted %d", rows, exch.RowsOut)
	}
	if len(coll.Rows) == 0 {
		t.Error("analyzed parallel query returned no rows")
	}
	if !strings.Contains(an.Render(), "[worker ") {
		t.Errorf("render lacks worker annotations:\n%s", an.Render())
	}

	// The analyzed result must equal the plain parallel execution.
	again, err := f.ex.Execute(pplan)
	if err != nil {
		t.Fatal(err)
	}
	assertCollectionsEqual(t, "analyzed vs plain parallel", coll, again)
}

// TestParallelWorkerCountFallback: an ExchangePlan with Workers <= 0 still
// executes (GOMAXPROCS fallback) and matches the serial rows.
func TestParallelWorkerCountFallback(t *testing.T) {
	f := defaultFixture(t)
	plan, _ := f.parallelizedPlan(t, `SELECT v FROM Vehicle v WHERE v.weight > 1200`)
	serial, err := f.ex.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	pplan := optimizer.Parallelize(plan, 2, -1, f.opt.Stats)
	forceZeroWorkers(pplan)
	par, err := f.ex.Execute(pplan)
	if err != nil {
		t.Fatal(err)
	}
	assertCollectionsEqual(t, "gomaxprocs fallback", par, serial)
}

func forceZeroWorkers(p optimizer.Plan) {
	if ex, ok := p.(*optimizer.ExchangePlan); ok {
		ex.Workers = 0
	}
	for _, k := range optimizer.Children(p) {
		forceZeroWorkers(k)
	}
}
