// Package optimizer implements MOOD's query optimization (Sections 7 and
// 8): expression simplification, transformation of WHERE/HAVING predicates
// into disjunctive normal form, classification of selections into the
// ImmSelInfo / PathSelInfo / OtherSelInfo dictionaries (Tables 11–12), the
// §8.1 rule for choosing how many indexes to use and how to order the
// remaining atomic selections, Algorithm 8.1's F/(1-s) ordering of path
// expressions (optimal by the Appendix lemma), Algorithm 8.2's greedy
// ordering of the implicit joins inside a path, and generation of the
// access plans the paper prints for Examples 8.1 and 8.2.
package optimizer

import (
	"mood/internal/expr"
	"mood/internal/object"
)

// Simplify performs the "expressions are simplified" step: constant folding
// of pure-constant subtrees, Boolean identity elimination (TRUE AND p -> p,
// FALSE OR p -> p, NOT NOT p -> p), and pushing NOT through comparisons.
func Simplify(e expr.Expr) expr.Expr {
	switch n := e.(type) {
	case *expr.Logic:
		l := Simplify(n.L)
		r := Simplify(n.R)
		lb, lConst := constBool(l)
		rb, rConst := constBool(r)
		if n.Op == expr.OpAnd {
			switch {
			case lConst && !lb, rConst && !rb:
				return falseConst()
			case lConst && lb:
				return r
			case rConst && rb:
				return l
			}
		} else {
			switch {
			case lConst && lb, rConst && rb:
				return trueConst()
			case lConst && !lb:
				return r
			case rConst && !rb:
				return l
			}
		}
		return &expr.Logic{Op: n.Op, L: l, R: r}
	case *expr.Not:
		inner := Simplify(n.E)
		switch in := inner.(type) {
		case *expr.Not:
			return in.E
		case *expr.Cmp:
			return &expr.Cmp{Op: in.Op.Negate(), L: in.L, R: in.R}
		case *expr.Logic:
			// De Morgan, then re-simplify to keep pushing inward.
			op := expr.OpOr
			if in.Op == expr.OpOr {
				op = expr.OpAnd
			}
			return Simplify(&expr.Logic{Op: op, L: &expr.Not{E: in.L}, R: &expr.Not{E: in.R}})
		case *expr.Const:
			return boolConst(!in.Val.Bool())
		}
		return &expr.Not{E: inner}
	case *expr.Arith:
		l := Simplify(n.L)
		r := Simplify(n.R)
		// Parameter-tagged constants (Param != 0) must never fold: the plan
		// cache substitutes a fresh value per execution, so folding would
		// bake the first binding into the cached plan shape.
		if lc, ok := l.(*expr.Const); ok && lc.Param == 0 {
			if rc, ok := r.(*expr.Const); ok && rc.Param == 0 {
				folded := &expr.Arith{Op: n.Op, L: lc, R: rc}
				if v, err := folded.Eval(nil); err == nil {
					return &expr.Const{Val: v}
				}
			}
		}
		return &expr.Arith{Op: n.Op, L: l, R: r}
	case *expr.Cmp:
		l := Simplify(n.L)
		r := Simplify(n.R)
		if lc, ok := l.(*expr.Const); ok && lc.Param == 0 {
			if rc, ok := r.(*expr.Const); ok && rc.Param == 0 {
				folded := &expr.Cmp{Op: n.Op, L: lc, R: rc}
				if v, err := folded.Eval(nil); err == nil {
					return &expr.Const{Val: v}
				}
			}
		}
		return &expr.Cmp{Op: n.Op, L: l, R: r}
	case *expr.Between:
		return &expr.Between{E: Simplify(n.E), Lo: Simplify(n.Lo), Hi: Simplify(n.Hi)}
	case *expr.Neg:
		inner := Simplify(n.E)
		if c, ok := inner.(*expr.Const); ok && c.Param == 0 {
			if v, err := (&expr.Neg{E: c}).Eval(nil); err == nil {
				return &expr.Const{Val: v}
			}
		}
		return &expr.Neg{E: inner}
	}
	return e
}

func constBool(e expr.Expr) (val, isConst bool) {
	if c, ok := e.(*expr.Const); ok && c.Param == 0 && c.Val.Kind == object.KindBoolean {
		return c.Val.Bool(), true
	}
	return false, false
}

func trueConst() expr.Expr  { return &expr.Const{Val: object.NewBool(true)} }
func falseConst() expr.Expr { return &expr.Const{Val: object.NewBool(false)} }
func boolConst(b bool) expr.Expr {
	return &expr.Const{Val: object.NewBool(b)}
}

// AndTerm is one conjunct group of the DNF: p_i1 AND p_i2 AND ... AND p_im.
type AndTerm []expr.Expr

// Expr reassembles the AND-term into a conjunction.
func (t AndTerm) Expr() expr.Expr {
	if len(t) == 0 {
		return trueConst()
	}
	out := t[0]
	for _, p := range t[1:] {
		out = &expr.Logic{Op: expr.OpAnd, L: out, R: p}
	}
	return out
}

// maxDNFTerms bounds the disjunct blowup of the distribution step.
const maxDNFTerms = 1024

// ToDNF transforms a (simplified) predicate into disjunctive normal form:
// (p11 AND ... AND p1m) OR (p21 AND ...) OR ..., returning the AND-terms.
// The UNION of the AND-term sub-plans then computes the whole predicate
// (Section 7).
func ToDNF(e expr.Expr) []AndTerm {
	e = Simplify(e)
	terms := dnf(e)
	// Drop constant-TRUE conjuncts inside terms and constant-FALSE terms.
	out := make([]AndTerm, 0, len(terms))
	for _, t := range terms {
		keep := AndTerm{}
		isFalse := false
		for _, p := range t {
			if b, isConst := constBool(p); isConst {
				if !b {
					isFalse = true
					break
				}
				continue
			}
			keep = append(keep, p)
		}
		if !isFalse {
			out = append(out, keep)
		}
	}
	return out
}

func dnf(e expr.Expr) []AndTerm {
	switch n := e.(type) {
	case *expr.Logic:
		if n.Op == expr.OpOr {
			return append(dnf(n.L), dnf(n.R)...)
		}
		// AND: distribute over the OR-terms of both sides.
		ls := dnf(n.L)
		rs := dnf(n.R)
		if len(ls)*len(rs) > maxDNFTerms {
			// Give up distributing: keep the conjunction opaque as one
			// predicate (still correct, just less optimizable).
			return []AndTerm{{e}}
		}
		var out []AndTerm
		for _, l := range ls {
			for _, r := range rs {
				term := make(AndTerm, 0, len(l)+len(r))
				term = append(term, l...)
				term = append(term, r...)
				out = append(out, term)
			}
		}
		return out
	default:
		return []AndTerm{{e}}
	}
}
