package exec

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mood/internal/algebra"
	"mood/internal/catalog"
	"mood/internal/cost"
	"mood/internal/expr"
	"mood/internal/funcmgr"
	"mood/internal/object"
	"mood/internal/optimizer"
	"mood/internal/storage"
)

// This file is the morsel-driven parallel execution path: the physical
// operators compiled from an optimizer.ExchangePlan. An exchange fans its
// input's work units — page-range morsels for extent scans, OID chunks for
// index selections and hash-join probes — out to a bounded pool of worker
// goroutines and merges the per-task row batches back into one stream in
// task order. Tasks are numbered in the exact order the serial operator
// would produce their rows and workers claim tasks through a shared atomic
// counter (claim order = task order), so the merged stream is byte-identical
// to the serial one and out-of-order buffering stays bounded by the worker
// count.
//
// On the simulated disk the win is latency hiding, not CPU parallelism:
// with DiskSim latency emulation enabled, concurrent workers overlap their
// per-page sleeps, so wall-clock time shrinks while the simulated page
// accounting (atomic, commutative) stays exactly equal to the serial plan's.

// exchangeMorselPages is the morsel size for parallel extent scans: how many
// consecutive chain-order pages one scan task covers. Small enough that a
// short extent still splits across workers, large enough that the per-task
// scheduling overhead stays well under the simulated cost of its pages.
// It equals the serial cursor's shard-rotation run length on purpose: the
// Seq-merged parallel row order then matches the serial order at any shard
// count, which the differential wall asserts.
const exchangeMorselPages = catalog.MorselPages

// exchangeOIDChunk is the task size for parallel index selections and
// hash-join probes: how many candidate OIDs one task dereferences.
const exchangeOIDChunk = 32

// WorkerStat is one worker's contribution to a parallel operator: rows it
// emitted and page fetches it issued (buffer-pool hits included, so the sum
// across workers can exceed the simulated disk-read delta when the pool
// absorbs re-reads).
type WorkerStat struct {
	Rows  int64
	Pages int64
}

// workerStatser is implemented by the exchange operators; EXPLAIN ANALYZE
// uses it to annotate a parallel node with per-worker figures.
type workerStatser interface {
	WorkerStats() []WorkerStat
}

type taskResult struct {
	seq  int
	rows []algebra.Row
	err  error
}

// exchangeCore schedules numbered tasks across worker goroutines and merges
// their row batches back in task order. In eager mode (EXPLAIN ANALYZE) the
// whole fan-out runs inside start, so the stats wrapper's page delta around
// Open captures the operator's full footprint exactly; in lazy mode workers
// produce in the background while the consumer pulls.
type exchangeCore struct {
	workers int
	eager   bool

	ntasks    int
	newWorker func(ws *WorkerStat) func(task int) ([]algebra.Row, error)
	next      atomic.Int64
	stop      atomic.Bool
	results   chan taskResult
	wg        sync.WaitGroup
	wstats    []WorkerStat

	buf      map[int][]algebra.Row // completed tasks awaiting their turn
	seq      int                   // next task to emit
	cur      []algebra.Row
	ci       int
	err      error
	started  bool
	launched bool
	closed   bool
}

// exchangeWorkers resolves the degree of parallelism of a plan node:
// non-positive falls back to GOMAXPROCS.
func exchangeWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// start registers the task set. newWorker is called once per worker and
// returns the worker's task function, so per-worker state (each worker's
// RowEvaluator — evaluators reuse one expression environment and are not
// shareable across goroutines) is created exactly once. In eager mode the
// pool launches and drains immediately, inside the caller's Open; in lazy
// mode launch is deferred to the first Next, so no work happens before the
// consumer demands a row (and instrumentation around Open measures only the
// serial setup: morsel discovery, index probes, join builds).
func (c *exchangeCore) start(ntasks int, newWorker func(ws *WorkerStat) func(task int) ([]algebra.Row, error)) error {
	c.ntasks = ntasks
	c.newWorker = newWorker
	c.buf = make(map[int][]algebra.Row)
	c.started = true
	if c.eager {
		c.launch()
		return c.drainEager()
	}
	return nil
}

// launch spawns the worker goroutines. Workers claim tasks through the
// shared atomic counter, so claim order equals task order and the merge
// buffer stays bounded by the worker count.
func (c *exchangeCore) launch() {
	if c.launched {
		return
	}
	c.launched = true
	c.results = make(chan taskResult, c.ntasks)
	nw := c.workers
	if nw < 1 {
		nw = 1
	}
	if nw > c.ntasks {
		nw = c.ntasks
	}
	c.wstats = make([]WorkerStat, nw)
	for w := 0; w < nw; w++ {
		run := c.newWorker(&c.wstats[w])
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			for !c.stop.Load() {
				t := int(c.next.Add(1)) - 1
				if t >= c.ntasks {
					return
				}
				rows, err := run(t)
				// The channel holds every task's result, so this send
				// never blocks and Close never deadlocks a worker.
				c.results <- taskResult{seq: t, rows: rows, err: err}
				if err != nil {
					c.stop.Store(true)
					return
				}
			}
		}()
	}
}

// drainEager collects every task's result before returning, so an analyzed
// exchange does all its work (and all its page reads) inside Open.
func (c *exchangeCore) drainEager() error {
	for got := 0; got < c.ntasks; got++ {
		res := <-c.results
		if res.err != nil {
			c.err = res.err
			break
		}
		c.buf[res.seq] = res.rows
	}
	c.wg.Wait()
	return c.err
}

// nextRow emits the merged stream: the current task's buffered rows, then
// the next task in sequence — waiting on the results channel until that
// task completes. A worker error surfaces as soon as its result arrives.
func (c *exchangeCore) nextRow() (algebra.Row, bool, error) {
	if !c.launched && c.started {
		c.launch()
	}
	for {
		if c.err != nil {
			return algebra.Row{}, false, c.err
		}
		if c.ci < len(c.cur) {
			row := c.cur[c.ci]
			c.ci++
			return row, true, nil
		}
		if c.seq >= c.ntasks {
			return algebra.Row{}, false, nil
		}
		if rows, ok := c.buf[c.seq]; ok {
			delete(c.buf, c.seq)
			c.cur, c.ci = rows, 0
			c.seq++
			continue
		}
		res := <-c.results
		if res.err != nil {
			c.err = res.err
			return algebra.Row{}, false, c.err
		}
		c.buf[res.seq] = res.rows
	}
}

// nextBatch is the merge's batch form. Task outputs rarely align with
// BatchCapacity (a morsel yields pages×rows-per-page rows), so the fill
// continues across task boundaries: the current task's remainder, then as
// many whole/partial successor tasks as fit. Only stream end yields a short
// batch, which keeps the merged batch stream — not just the row stream —
// identical to a serial operator's and is what the partial-final-batch
// regression test pins.
func (c *exchangeCore) nextBatch(b *RowBatch) (int, error) {
	if !c.launched && c.started {
		c.launch()
	}
	n := 0
	for n < BatchCapacity {
		if c.err != nil {
			return 0, c.err
		}
		if c.ci < len(c.cur) {
			take := copy(b.Rows[n:], c.cur[c.ci:])
			n += take
			c.ci += take
			continue
		}
		if c.seq >= c.ntasks {
			break
		}
		if rows, ok := c.buf[c.seq]; ok {
			delete(c.buf, c.seq)
			c.cur, c.ci = rows, 0
			c.seq++
			continue
		}
		res := <-c.results
		if res.err != nil {
			c.err = res.err
			return 0, c.err
		}
		c.buf[res.seq] = res.rows
	}
	return n, nil
}

// closeCore stops the pool: workers quit at their next claim, and the wait
// guarantees no goroutine touches the catalog after Close returns.
func (c *exchangeCore) closeCore() {
	if c.closed || !c.launched {
		c.closed = true
		return
	}
	c.closed = true
	c.stop.Store(true)
	c.wg.Wait()
}

// workerStats returns the per-worker counters. Valid once the operator is
// fully drained (eager Open) or closed — both paths wg.Wait first.
func (c *exchangeCore) workerStats() []WorkerStat {
	out := make([]WorkerStat, len(c.wstats))
	copy(out, c.wstats)
	return out
}

// chunkOIDs splits an OID list into tasks of at least per OIDs, preserving
// order and extending each task to the end of the page run it lands in.
// The lists arrive sorted, so page alignment means no two tasks fetch the
// same page — without it, neighboring workers serialize on the buffer
// pool's per-page load latch instead of overlapping their reads.
func chunkOIDs(oids []storage.OID, per int) [][]storage.OID {
	if per < 1 {
		per = 1
	}
	var chunks [][]storage.OID
	for off := 0; off < len(oids); {
		end := off + per
		if end >= len(oids) {
			end = len(oids)
		} else {
			for end < len(oids) && oids[end]>>16 == oids[end-1]>>16 {
				end++
			}
		}
		chunks = append(chunks, oids[off:end])
		off = end
	}
	return chunks
}

// --- parallel operators ---------------------------------------------------

// exchangeScanOp is the parallel extent scan, optionally with a fused
// selection: workers read disjoint page-range morsels and evaluate the
// predicate on their own rows with a per-worker evaluator.
type exchangeScanOp struct {
	core    exchangeCore
	alg     *algebra.Algebra
	class   string
	varName string
	minus   []string
	closure bool
	pred    expr.Expr                // nil for a bare BIND
	funcs   *funcmgr.QueryRegistry   // nil in row mode: interpret
	predFn  expr.PredFn              // self-mode compiled predicate, shared read-only by workers
}

func (o *exchangeScanOp) Open() error {
	morsels, err := o.alg.Cat.ExtentMorsels(o.class, o.minus, o.closure, exchangeMorselPages)
	if err != nil {
		return err
	}
	if o.pred != nil && o.funcs != nil {
		o.predFn, _ = o.funcs.Predicate(o.varName, o.pred)
	}
	resolve := o.alg.Cat.Resolver()
	return o.core.start(len(morsels), func(ws *WorkerStat) func(int) ([]algebra.Row, error) {
		re := o.alg.NewRowEvaluator()
		return func(t int) ([]algebra.Row, error) {
			m := &morsels[t]
			// Fused + compiled: push the predicate into the morsel's
			// page-decode loop, as in the serial scanSelectOp — rejected
			// objects are never copied out of the page/cache.
			var filter func(oid storage.OID, v *object.Value) (bool, error)
			if o.predFn != nil {
				filter = func(oid storage.OID, v *object.Value) (bool, error) {
					return o.predFn(v, oid, resolve)
				}
			}
			objs, err := o.alg.Cat.ReadMorselFiltered(m, filter)
			if err != nil {
				return nil, err
			}
			ws.Pages += int64(len(m.Pages))
			rows := make([]algebra.Row, 0, len(objs))
			for i := range objs {
				so := &objs[i]
				row := algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: so.OID, Val: so.Val}}}
				if o.pred != nil && o.predFn == nil {
					keep, err := re.EvalBool(row, o.pred)
					if err != nil {
						return nil, err
					}
					if !keep {
						continue
					}
				}
				rows = append(rows, row)
			}
			ws.Rows += int64(len(rows))
			return rows, nil
		}
	})
}

func (o *exchangeScanOp) Next() (algebra.Row, bool, error)   { return o.core.nextRow() }
func (o *exchangeScanOp) NextBatch(b *RowBatch) (int, error) { return o.core.nextBatch(b) }
func (o *exchangeScanOp) Close() error                       { o.core.closeCore(); return nil }
func (o *exchangeScanOp) WorkerStats() []WorkerStat          { return o.core.workerStats() }

func (o *exchangeScanOp) compiledPredicate() (active, full bool) {
	return o.pred != nil && o.funcs != nil, o.predFn != nil
}

// exchangeIndSelOp is the parallel index selection: the index probe runs
// serially at Open (it is a handful of index-page touches), then workers
// dereference disjoint OID chunks and re-check the predicate.
type exchangeIndSelOp struct {
	core      exchangeCore
	alg       *algebra.Algebra
	class     string
	varName   string
	indexKind catalog.IndexKind
	pred      algebra.SimplePredicate
}

func (o *exchangeIndSelOp) Open() error {
	oids, err := o.alg.IndSelCandidates(o.class, o.indexKind, o.pred)
	if err != nil {
		return err
	}
	recheck := o.alg.RecheckExpr(o.varName, o.pred)
	chunks := chunkOIDs(oids, exchangeOIDChunk)
	return o.core.start(len(chunks), func(ws *WorkerStat) func(int) ([]algebra.Row, error) {
		re := o.alg.NewRowEvaluator()
		return func(t int) ([]algebra.Row, error) {
			// One page-ordered batch fetch per chunk: the chunk's OIDs
			// arrive sorted and page-aligned, so the whole chunk resolves
			// with one pin per page instead of one random Get per OID.
			vals, _, err := o.alg.Cat.GetObjects(chunks[t])
			if err != nil {
				return nil, err
			}
			ws.Pages += int64(len(chunks[t]))
			var rows []algebra.Row
			for i, oid := range chunks[t] {
				row := algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid, Val: vals[i]}}}
				ok, err := re.EvalBool(row, recheck)
				if err != nil {
					return nil, err
				}
				if ok {
					// Match IndSel: emitted rows carry the identifier only.
					rows = append(rows, algebra.Row{Vars: map[string]algebra.Bound{o.varName: {OID: oid}}})
				}
			}
			ws.Rows += int64(len(rows))
			return rows, nil
		}
	})
}

func (o *exchangeIndSelOp) Next() (algebra.Row, bool, error)   { return o.core.nextRow() }
func (o *exchangeIndSelOp) NextBatch(b *RowBatch) (int, error) { return o.core.nextBatch(b) }
func (o *exchangeIndSelOp) Close() error                       { o.core.closeCore(); return nil }
func (o *exchangeIndSelOp) WorkerStats() []WorkerStat          { return o.core.workerStats() }

// exchangeHashJoinOp parallelizes the hash-partition join's probe phase.
// The build runs once, serially, exactly as in hashJoinOp.Open: both inputs
// drain, the left rows partition on the pointer field, and the distinct
// referenced OIDs sort. Workers then dereference disjoint sorted-order ref
// chunks against the shared read-only partition and right-side maps.
type exchangeHashJoinOp struct {
	core        exchangeCore
	alg         *algebra.Algebra
	left, right *compiled
	leftVar     string
	attr        string
	rightVar    string
}

func (o *exchangeHashJoinOp) Open() error {
	lc, err := drainOp(o.left.op, o.left.hdr)
	if err != nil {
		return err
	}
	rc, err := drainOp(o.right.op, o.right.hdr)
	if err != nil {
		return err
	}
	rightBy := algebra.RowsByOID(rc, o.rightVar)
	partitions := make(map[storage.OID][]algebra.Row)
	for i := range lc.Rows {
		lrow := lc.Rows[i]
		lb := lrow.Vars[o.leftVar]
		if err := o.alg.MaterializeBound(&lb); err != nil {
			return err
		}
		lrow.Vars[o.leftVar] = lb
		for _, ref := range algebra.RefsOf(lb.Val, o.attr) {
			partitions[ref] = append(partitions[ref], lrow)
		}
	}
	refs := make([]storage.OID, 0, len(partitions))
	for ref := range partitions {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	chunks := chunkOIDs(refs, exchangeOIDChunk)
	return o.core.start(len(chunks), func(ws *WorkerStat) func(int) ([]algebra.Row, error) {
		return func(t int) ([]algebra.Row, error) {
			// Only refs the right side holds are dereferenced (as in the
			// serial probe); the chunk's survivors resolve through one
			// page-ordered batch fetch.
			hits := make([]storage.OID, 0, len(chunks[t]))
			for _, ref := range chunks[t] {
				if _, hit := rightBy[ref]; hit {
					hits = append(hits, ref)
				}
			}
			vals, _, err := o.alg.Cat.GetObjects(hits)
			if err != nil {
				return nil, err
			}
			ws.Pages += int64(len(hits))
			var rows []algebra.Row
			for i, ref := range hits {
				val := vals[i]
				for _, lrow := range partitions[ref] {
					for _, rrow := range rightBy[ref] {
						merged := lrow.Merged(rrow)
						rb := merged.Vars[o.rightVar]
						rb.Val = val
						merged.Vars[o.rightVar] = rb
						rows = append(rows, merged)
					}
				}
			}
			ws.Rows += int64(len(rows))
			return rows, nil
		}
	})
}

func (o *exchangeHashJoinOp) Next() (algebra.Row, bool, error)   { return o.core.nextRow() }
func (o *exchangeHashJoinOp) NextBatch(b *RowBatch) (int, error) { return o.core.nextBatch(b) }

func (o *exchangeHashJoinOp) Close() error {
	o.core.closeCore()
	err := o.left.op.Close()
	if err2 := o.right.op.Close(); err == nil {
		err = err2
	}
	return err
}

func (o *exchangeHashJoinOp) WorkerStats() []WorkerStat { return o.core.workerStats() }

func (o *exchangeHashJoinOp) accessPath() string { return "hash" }

// compileExchange lowers an ExchangePlan onto one of the parallel operators.
// The optimizer only wraps exchangeable shapes, but compilation double-checks
// and falls back to compiling the input serially for anything else, so an
// exchange can never change results — only scheduling.
func (e *Executor) compileExchange(c *compiled, n *optimizer.ExchangePlan, an *analyzeCtx) (*compiled, error) {
	workers := exchangeWorkers(n.Workers)
	eager := an != nil

	switch in := n.Input.(type) {
	case *optimizer.BindPlan:
		c.hdr = optimizer.Header{Kind: algebra.ExtentKind, Name: in.Var, Class: in.Class}
		c.op = &exchangeScanOp{
			core: exchangeCore{workers: workers, eager: eager},
			alg:  e.Alg, class: in.Class, varName: in.Var,
			minus: in.Minus, closure: in.Every || len(in.Minus) > 0,
		}
		return c, nil

	case *optimizer.SelectPlan:
		bp, ok := in.Input.(*optimizer.BindPlan)
		if !ok {
			return e.compileNode(n.Input, an)
		}
		c.hdr = optimizer.Header{Kind: algebra.ExtentKind, Name: bp.Var, Class: bp.Class}
		xs := &exchangeScanOp{
			core: exchangeCore{workers: workers, eager: eager},
			alg:  e.Alg, class: bp.Class, varName: bp.Var,
			minus: bp.Minus, closure: bp.Every || len(bp.Minus) > 0,
			pred: in.Pred,
		}
		if !e.RowMode {
			xs.funcs = e.queryFuncs()
		}
		c.op = xs
		return c, nil

	case *optimizer.IndSelPlan:
		c.hdr = optimizer.Header{Kind: algebra.SetKind, Name: in.Var, Class: in.Class}
		c.op = &exchangeIndSelOp{
			core: exchangeCore{workers: workers, eager: eager},
			alg:  e.Alg, class: in.Class, varName: in.Var,
			indexKind: in.Index.Kind, pred: in.Pred,
		}
		return c, nil

	case *optimizer.JoinPlan:
		if in.Method != cost.HashPartition {
			return e.compileNode(n.Input, an)
		}
		left, err := e.compileNode(in.Left, an)
		if err != nil {
			return nil, err
		}
		c.kids = append(c.kids, left)
		right, err := e.compileNode(in.Right, an)
		if err != nil {
			return nil, err
		}
		c.kids = append(c.kids, right)
		c.hdr = optimizer.Header{
			Kind:  algebra.JoinKind(left.hdr.Kind, right.hdr.Kind),
			Name:  in.RightVar,
			Class: right.hdr.Class,
		}
		c.op = &exchangeHashJoinOp{
			core: exchangeCore{workers: workers, eager: eager},
			alg:  e.Alg, left: left, right: right,
			leftVar: in.LeftVar, attr: in.Attribute, rightVar: in.RightVar,
		}
		return c, nil
	}
	return e.compileNode(n.Input, an)
}
