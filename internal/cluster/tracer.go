// Package cluster implements reference-driven physical object clustering:
// a near-zero-cost tracer that learns which objects are traversed together,
// and a greedy planner that turns those observations into per-file placement
// orders the kernel's online reorganizer applies with storage.MigrateRecords.
//
// The design follows the DSTC family of dynamic clustering schemes: object
// "heat" (access frequency) picks the seeds, pairwise co-access affinity
// picks the chain order, and everything is learned online from the running
// workload rather than from a static schema annotation. The tracer is built
// to sit on the hot read path, so every observation is gated by one atomic
// load (disabled: zero cost, zero allocations) and then sampled — only every
// N-th traversal pays the striped map updates.
package cluster

import (
	"sync"
	"sync/atomic"

	"mood/internal/storage"
)

// nStripes must be a power of two; it bounds observer lock contention when
// parallel workers traverse concurrently.
const nStripes = 16

// edgeKey is an undirected co-access pair, canonicalized a < b.
type edgeKey struct {
	a, b storage.OID
}

// stripe holds one shard of the heat/affinity maps under its own mutex.
type stripe struct {
	mu   sync.Mutex
	heat map[storage.OID]uint32
	edge map[edgeKey]uint32
}

// fileKey identifies one part (one heap file on one shard) of an extent.
type fileKey struct {
	Shard int
	File  storage.FileID
}

// fileObs accumulates per-part batch-fetch observations with atomic fields,
// so steady-state updates need only the registry's read lock.
type fileObs struct {
	runs, refs, pages atomic.Uint64
}

// FileStat is a snapshot of one part's cumulative batch-fetch observations:
// how many references batched fetches resolved against the file and how many
// distinct (post-forwarding) pages they landed on. The ratio is the measured
// clustering quality the cost model's clustering factor is learned from.
type FileStat struct {
	Shard int
	File  storage.FileID
	// Runs counts the sampled batch runs behind the totals, so a consumer
	// can reconstruct the average batch size refs/runs.
	Runs  uint64
	Refs  uint64
	Pages uint64
}

// Tracer collects reference-traversal statistics. All methods are safe for
// concurrent use; the observation hooks are safe to call from under the
// object store's locks (they never call back into storage).
type Tracer struct {
	enabled     atomic.Bool
	sampleEvery uint64
	seq         atomic.Uint64
	bseq        atomic.Uint64

	// batchRefs/batchPages are exact (never sampled): they feed the
	// clustered= counters EXPLAIN ANALYZE snapshots around a query.
	batchRefs  atomic.Int64
	batchPages atomic.Int64

	stripes [nStripes]stripe

	obsMu sync.RWMutex
	obs   map[fileKey]*fileObs
}

// New creates a tracer recording every sampleEvery-th observation
// (sampleEvery <= 1 records all of them). The tracer starts disabled.
func New(sampleEvery int) *Tracer {
	t := &Tracer{obs: map[fileKey]*fileObs{}}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	t.sampleEvery = uint64(sampleEvery)
	for i := range t.stripes {
		t.stripes[i].heat = map[storage.OID]uint32{}
		t.stripes[i].edge = map[edgeKey]uint32{}
	}
	return t
}

// Enable switches observation on or off. Disabled hooks cost one atomic load
// and allocate nothing.
func (t *Tracer) Enable(on bool) { t.enabled.Store(on) }

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// stripeOf maps an OID to its stripe. Page bits (not slot bits) select the
// stripe so co-resident objects tend to share one lock acquisition pattern.
func stripeOf(oid storage.OID) int {
	return int((uint64(oid)>>16)*0x9e3779b97f4a7c15>>59) & (nStripes - 1)
}

// ObserveAccess records one traversal: oids is the request-ordered batch a
// reader dereferenced together (the catalog's GetObjects input). Heat is
// credited per object and co-access affinity per consecutive same-file pair —
// request order is traversal order, so adjacency in the request is exactly
// the adjacency clustering wants on disk.
func (t *Tracer) ObserveAccess(oids []storage.OID) {
	if !t.enabled.Load() || len(oids) == 0 {
		return
	}
	if t.sampleEvery > 1 && t.seq.Add(1)%t.sampleEvery != 0 {
		return
	}
	for i, oid := range oids {
		s := &t.stripes[stripeOf(oid)]
		s.mu.Lock()
		s.heat[oid]++
		s.mu.Unlock()
		if i == 0 {
			continue
		}
		prev := oids[i-1]
		if prev == oid || prev.File() != oid.File() || prev.Shard() != oid.Shard() {
			continue
		}
		e := edgeKey{prev, oid}
		if e.b < e.a {
			e.a, e.b = e.b, e.a
		}
		es := &t.stripes[stripeOf(e.a)]
		es.mu.Lock()
		es.edge[e]++
		es.mu.Unlock()
	}
}

// ObserveBatch is the storage.BatchObserver hook: one observation per
// file-run of a FetchBatch call. The global counters are exact; the per-file
// registry (the clustering-factor feed) is sampled like ObserveAccess.
func (t *Tracer) ObserveBatch(shard int, file storage.FileID, refs, pages int) {
	if !t.enabled.Load() {
		return
	}
	t.batchRefs.Add(int64(refs))
	t.batchPages.Add(int64(pages))
	if t.sampleEvery > 1 && t.bseq.Add(1)%t.sampleEvery != 0 {
		return
	}
	k := fileKey{shard, file}
	t.obsMu.RLock()
	o := t.obs[k]
	t.obsMu.RUnlock()
	if o == nil {
		t.obsMu.Lock()
		if o = t.obs[k]; o == nil {
			o = &fileObs{}
			t.obs[k] = o
		}
		t.obsMu.Unlock()
	}
	o.runs.Add(1)
	o.refs.Add(uint64(refs))
	o.pages.Add(uint64(pages))
}

// BatchRefs returns the cumulative references resolved through batched
// fetches while tracing — the clustered= numerator EXPLAIN ANALYZE deltas.
func (t *Tracer) BatchRefs() int64 { return t.batchRefs.Load() }

// BatchPages returns the cumulative distinct pages those references landed
// on (post-forwarding) — the clustered= denominator.
func (t *Tracer) BatchPages() int64 { return t.batchPages.Load() }

// FileStats snapshots the per-part batch observations, sorted by (shard,
// file) for determinism.
func (t *Tracer) FileStats() []FileStat {
	t.obsMu.RLock()
	out := make([]FileStat, 0, len(t.obs))
	for k, o := range t.obs {
		out = append(out, FileStat{
			Shard: k.Shard, File: k.File,
			Runs: o.runs.Load(), Refs: o.refs.Load(), Pages: o.pages.Load(),
		})
	}
	t.obsMu.RUnlock()
	sortStats(out)
	return out
}

func sortStats(s []FileStat) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].Shard < s[j-1].Shard ||
			(s[j].Shard == s[j-1].Shard && s[j].File < s[j-1].File)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Traced returns the number of distinct objects with recorded heat.
func (t *Tracer) Traced() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		n += len(s.heat)
		s.mu.Unlock()
	}
	return n
}

// Reset clears the learned heat, affinity and per-file observations — the
// reorganizer calls it after applying a plan, so traces never grow without
// bound and the next plan reflects post-reorganization behavior. The exact
// batch counters are cumulative session totals and survive the reset.
func (t *Tracer) Reset() {
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		s.heat = map[storage.OID]uint32{}
		s.edge = map[edgeKey]uint32{}
		s.mu.Unlock()
	}
	t.obsMu.Lock()
	t.obs = map[fileKey]*fileObs{}
	t.obsMu.Unlock()
}
