package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record migration: the storage half of the clustering subsystem.
//
// The reorganizer moves records so objects dereferenced together co-reside
// on pages, but an OID is a physical address — file, page, slot — and every
// reference stored in the database names the record's ORIGINAL coordinates.
// Migration therefore never reuses an OID for different content and never
// invalidates one:
//
//   - the moved record is rewritten at its destination as a RELOCATED record
//     ([recRelocated][original OID][inner record]), so scans surface it under
//     its original identity at its new physical position;
//   - the original slot keeps a 9-byte FORWARD stub ([recForward][dest OID]),
//     the durable forwarding entry a cold reader resolves through;
//   - an in-memory forwarding map (OID -> destination) lets warm readers —
//     Get and, critically, the batched FetchBatch the traversal operators
//     use — jump straight to the destination page without touching the stub
//     page at all. The map is rebuilt lazily from the on-disk stubs after a
//     reopen or crash recovery.
//
// Re-migration keeps chains at depth one: the ORIGINAL stub is repointed to
// the newest destination and the intermediate copy is tombstoned, so a cold
// resolution never follows more than one hop (maxForwardHops is defensive).
//
// Every page mutated by a migration batch is logged through the caller's
// PageLogger as a whole-page before/after image BEFORE the buffer frame is
// touched, so a crash mid-batch is undone (losers) or replayed (winners) by
// ARIES recovery exactly like any other logged update. The storage package
// cannot import internal/wal (wal sits above storage), so the kernel curries
// its per-shard log's Update into the PageLogger shape.

// Additional record tags (recPlain and recOverflow live in store.go).
const (
	// recForward marks a 9-byte stub left at a migrated record's original
	// slot: [tag][destination OID, u64 LE].
	recForward byte = 2
	// recRelocated frames a migrated record at its destination:
	// [tag][original OID, u64 LE][inner record, including its own tag].
	recRelocated byte = 3
)

const (
	forwardRecSize = 1 + 8
	relocHeadSize  = 1 + 8
	maxForwardHops = 4
)

// PageLogger logs one whole-page update on behalf of the storage layer and
// returns the record's LSN, to be stamped on the page. The kernel curries a
// WAL transaction's Update method into this shape (offset is always 0 and
// before/after are full page images).
type PageLogger func(pid PageID, off int, before, after []byte) (uint32, error)

func forwardDst(rec []byte) OID {
	return OID(binary.LittleEndian.Uint64(rec[1:]))
}

func relocOrig(rec []byte) OID {
	return OID(binary.LittleEndian.Uint64(rec[1:]))
}

// forwardOf returns the record's current physical address per the in-memory
// forwarding map (the OID itself when the record never moved).
func (s *ObjectStore) forwardOf(oid OID) OID {
	if v, ok := s.fwd.Load(oid); ok {
		return v.(OID)
	}
	return oid
}

// Forwarded reports the in-memory forwarding entry for oid, if any. Tests
// and the reorganizer use it; readers go through forwardOf.
func (s *ObjectStore) Forwarded(oid OID) (OID, bool) {
	if v, ok := s.fwd.Load(oid); ok {
		return v.(OID), true
	}
	return NilOID, false
}

// learnForward caches a stub resolution discovered on a read path. Read
// paths never overwrite an existing entry: the map is only ever ahead of or
// equal to the on-disk stubs (migration updates both under the exclusive
// lock), so an existing entry is at least as current as the stub just read.
func (s *ObjectStore) learnForward(orig, dst OID) {
	if orig != dst {
		s.fwd.LoadOrStore(orig, dst)
	}
}

// ForgetForward drops in-memory forwarding entries. The reorganizer calls
// it after aborting a migration transaction: the on-disk stubs were undone,
// so the map entries pointing at the rolled-back destinations must go too
// (committed moves are simply re-learned from their stubs).
func (s *ObjectStore) ForgetForward(oids ...OID) {
	for _, oid := range oids {
		s.fwd.Delete(oid)
	}
}

// locateLocked resolves oid to the physical slot currently holding its
// record, following at most maxForwardHops on-disk stubs (depth one by
// construction) and caching what it learns. Caller holds s.mu (either mode).
func (s *ObjectStore) locateLocked(oid OID) (OID, error) {
	cur := s.forwardOf(oid)
	for hops := 0; hops < maxForwardHops; hops++ {
		pg, err := s.bp.Fetch(cur.Page())
		if err != nil {
			return NilOID, err
		}
		rec, gerr := pg.Get(cur.Slot())
		if gerr != nil {
			s.bp.Unpin(cur.Page(), false)
			return NilOID, gerr
		}
		isFwd := rec[0] == recForward
		var dst OID
		if isFwd {
			dst = forwardDst(rec)
		}
		if err := s.bp.Unpin(cur.Page(), false); err != nil {
			return NilOID, err
		}
		if !isFwd {
			return cur, nil
		}
		s.learnForward(oid, dst)
		cur = dst
	}
	return NilOID, fmt.Errorf("storage: forwarding chain too deep at %s", oid)
}

// loggedPageMutate applies fn to the page as one WAL-logged whole-page
// update: the mutation runs on a scratch copy first, the before/after images
// are logged, and only then does the frame change and carry the new LSN — a
// failed log append leaves the frame untouched, so an unlogged mutation can
// never reach disk. With a nil logger fn mutates the frame directly.
func (s *ObjectStore) loggedPageMutate(pid PageID, logPage PageLogger, fn func(pg *Page) error) error {
	pg, err := s.bp.Fetch(pid)
	if err != nil {
		return err
	}
	if logPage == nil {
		if err := fn(pg); err != nil {
			s.bp.Unpin(pid, false)
			return err
		}
		return s.bp.Unpin(pid, true)
	}
	before := append([]byte(nil), pg.Bytes()...)
	scratch := NewPage(pid, append([]byte(nil), pg.Bytes()...))
	if err := fn(scratch); err != nil {
		s.bp.Unpin(pid, false)
		return err
	}
	lsn, lerr := logPage(pid, 0, before, scratch.Bytes())
	if lerr != nil {
		s.bp.Unpin(pid, false)
		return lerr
	}
	copy(pg.Bytes(), scratch.Bytes())
	pg.SetLSN(lsn)
	return s.bp.Unpin(pid, true)
}

// appendPageLogged grows the file by one heap page with every structural
// change (page init, chain link, directory record) logged, so a crash in the
// middle of a reorganization cannot orphan migrated records: redo replays
// the link and the directory, undo rolls all three back to an unreachable —
// and therefore harmless — allocated page.
func (s *ObjectStore) appendPageLogged(f *File, logPage PageLogger) (PageID, error) {
	pg, err := s.bp.NewPage()
	if err != nil {
		return 0, err
	}
	pid := pg.ID
	if err := s.bp.Unpin(pid, true); err != nil {
		return 0, err
	}
	if err := s.loggedPageMutate(pid, logPage, func(p *Page) error {
		p.InitHeap(PageKindHeap)
		return nil
	}); err != nil {
		return 0, err
	}
	if f.lastPage != 0 {
		if err := s.loggedPageMutate(f.lastPage, logPage, func(p *Page) error {
			p.SetNextPage(pid)
			return nil
		}); err != nil {
			return 0, err
		}
	} else {
		f.firstPage = pid
	}
	f.lastPage = pid
	if len(f.pages) == int(f.numPages) {
		f.pages = append(f.pages, pid)
	}
	f.numPages++
	if err := s.loggedPageMutate(s.fm.dirPage, logPage, func(p *Page) error {
		return p.Update(f.dirSlot, encodeDirRecord(f))
	}); err != nil {
		return 0, err
	}
	return pid, nil
}

// MigrateRecords relocates the given records of one extent part onto fresh
// pages appended at the end of the part's file, in the order given — the
// physical realization of a clustering placement. Records already migrated
// are moved again from their current home, with the original stub repointed
// (chains stay depth one). Records deleted since planning are skipped. The
// return value is the number of records actually moved.
//
// cont selects the destination of the first copy: false opens a fresh page
// (the start of a new placement, so a later re-migration fully vacates this
// placement's pages and compaction can reclaim them), true continues packing
// the file's tail page — which is the previous batch's destination when one
// placement is applied in several batches.
//
// OIDs are preserved: every oid passed in keeps resolving, through the
// forwarding map or its on-disk stub, to the same payload. The object-cache
// invalidation hook fires per moved record (same discipline as Update), and
// every mutated page goes through logPage (see PageLogger) when non-nil.
//
// The store's exclusive lock is held for the whole batch, so callers should
// migrate in small batches to bound reader stalls.
func (s *ObjectStore) MigrateRecords(e *Extent, part int, oids []OID, logPage PageLogger, cont bool) (int, error) {
	if part < 0 || part >= len(e.parts) {
		return 0, fmt.Errorf("storage: migrate: part %d out of range (extent %q has %d)", part, e.Name, len(e.parts))
	}
	f := e.parts[part]
	s.mu.Lock()
	defer s.mu.Unlock()

	maxRec := MaxRecordSize(s.bp.Disk().PageSize())
	moved := 0
	var dstPID PageID // 0: append a fresh page on first need
	if cont {
		dstPID = f.lastPage
	}
	for _, oid := range oids {
		if oid.File() != f.ID || oid.Shard() != s.shard {
			return moved, fmt.Errorf("storage: migrate: %s is not a record of file %d on shard %d", oid, f.ID, s.shard)
		}
		cur, err := s.locateLocked(oid)
		if err != nil {
			if errors.Is(err, ErrRecordGone) {
				continue
			}
			return moved, err
		}

		// Snapshot the record to move (framed once if already relocated).
		pg, err := s.bp.Fetch(cur.Page())
		if err != nil {
			return moved, err
		}
		rec, gerr := pg.Get(cur.Slot())
		if gerr != nil {
			s.bp.Unpin(cur.Page(), false)
			if errors.Is(gerr, ErrRecordGone) {
				continue
			}
			return moved, gerr
		}
		inner := rec
		if rec[0] == recRelocated {
			inner = rec[relocHeadSize:]
		}
		relo := make([]byte, relocHeadSize+len(inner))
		relo[0] = recRelocated
		binary.LittleEndian.PutUint64(relo[1:], uint64(oid))
		copy(relo[relocHeadSize:], inner)
		if err := s.bp.Unpin(cur.Page(), false); err != nil {
			return moved, err
		}
		if len(relo) > maxRec {
			// The inline record is too large to carry the relocation frame;
			// leave it where it is (overflow records never hit this: only
			// their 9-byte head moves).
			continue
		}

		// Copy to the destination, appending a fresh page when full.
		var dstSlot SlotID
		for {
			if dstPID == 0 {
				dstPID, err = s.appendPageLogged(f, logPage)
				if err != nil {
					return moved, err
				}
			}
			var full bool
			err = s.loggedPageMutate(dstPID, logPage, func(p *Page) error {
				slot, ierr := p.Insert(relo)
				if ierr != nil {
					return ierr
				}
				dstSlot = slot
				return nil
			})
			if errors.Is(err, ErrPageFull) {
				full = true
				dstPID = 0
			} else if err != nil {
				return moved, err
			}
			if !full {
				break
			}
		}
		dst := MakeOID(f.ID, dstPID, dstSlot) | s.tag

		// Repoint the original slot to the new home...
		stub := make([]byte, forwardRecSize)
		stub[0] = recForward
		binary.LittleEndian.PutUint64(stub[1:], uint64(dst))
		if err := s.loggedPageMutate(oid.Page(), logPage, func(p *Page) error {
			return p.Update(oid.Slot(), stub)
		}); err != nil {
			if errors.Is(err, ErrPageFull) {
				// The original record is smaller than a stub and its page
				// cannot grow it: retract the copy and leave the record.
				_ = s.loggedPageMutate(dstPID, logPage, func(p *Page) error {
					return p.Delete(dstSlot)
				})
				continue
			}
			return moved, err
		}
		// ...and tombstone the intermediate copy of a re-migrated record.
		if cur != oid {
			if err := s.loggedPageMutate(cur.Page(), logPage, func(p *Page) error {
				return p.Delete(cur.Slot())
			}); err != nil {
				return moved, err
			}
		}
		s.fwd.Store(oid, dst)
		s.invalidate(oid)
		moved++
	}
	return moved, nil
}

// CompactExtent removes from the extent's scan chains every page that no
// longer carries record content, and returns the number of pages removed.
// Two cases:
//
//   - pages with no live slot (all tombstones) are unlinked AND freed;
//   - pages whose live slots are ALL forward stubs are unlinked but stay
//     allocated ("parked"). The stubs are the durable forwarding entries a
//     cold reopen resolves migrated OIDs through, and Get reaches them
//     directly by the OID's page id — chain membership is only for scans.
//     Parking them is what makes a reorganized extent scan at its dense
//     page count instead of paying for every vacated source page forever.
//
// The structural change is made crash-safe by ordering, not logging: the
// chain relink and directory record are flushed BEFORE an empty page is
// returned to the allocator, so a reopened directory never points into a
// freed page. A parked page is never freed, so either chain state is safe.
func (s *ObjectStore) CompactExtent(e *Extent) (int, error) {
	freed := 0
	for _, f := range e.parts {
		n, err := s.compactFile(f)
		freed += n
		if err != nil {
			return freed, err
		}
	}
	return freed, nil
}

func (s *ObjectStore) compactFile(f *File) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	freed := 0
	var prev PageID
	pid := f.firstPage
	for pid != 0 {
		pg, err := s.bp.Fetch(pid)
		if err != nil {
			return freed, err
		}
		next := pg.NextPage()
		live := pg.LiveRecords()
		park := live > 0 && pg.forwardOnly()
		if err := s.bp.Unpin(pid, false); err != nil {
			return freed, err
		}
		if live > 0 && !park {
			prev = pid
			pid = next
			continue
		}
		// Unlink, persist the structure, then free (unless parked).
		if prev == 0 {
			f.firstPage = next
		} else {
			ppg, err := s.bp.Fetch(prev)
			if err != nil {
				return freed, err
			}
			ppg.SetNextPage(next)
			if err := s.bp.Unpin(prev, true); err != nil {
				return freed, err
			}
		}
		if f.lastPage == pid {
			f.lastPage = prev
		}
		f.numPages--
		f.pages = nil // chain cache cold; PageList rebuilds it
		if err := s.fm.syncDir(f); err != nil {
			return freed, err
		}
		if prev != 0 {
			if err := s.bp.FlushPage(prev); err != nil {
				return freed, err
			}
		}
		if err := s.bp.FlushPage(s.fm.dirPage); err != nil {
			return freed, err
		}
		if park {
			// The stubs must stay readable at their original page id; make
			// sure the (now chain-orphaned) page is durable before the frame
			// can be recycled.
			if err := s.bp.FlushPage(pid); err != nil {
				return freed, err
			}
		} else {
			s.bp.Drop(pid)
			if err := s.bp.Disk().FreePage(pid); err != nil {
				return freed, err
			}
		}
		freed++
		pid = next
	}
	return freed, nil
}

// forwardOnly reports whether every live record of the page is a forward
// stub — the state of a fully-vacated migration source page, which
// compaction parks out of the scan chain.
func (p *Page) forwardOnly() bool {
	for i := 0; i < p.NumSlots(); i++ {
		off := p.slotOffset(i)
		if off == 0 {
			continue
		}
		if p.buf[off] != recForward {
			return false
		}
	}
	return true
}
