// Package wal provides write-ahead logging and crash recovery, the
// "backup and recovery of data" kernel service MOOD obtains from the Exodus
// Storage Manager. It implements a compact ARIES-style protocol: physical
// before/after-image logging, write-ahead enforcement through the buffer
// pool's flush hook, redo of every lost update, and undo of loser
// transactions with compensation log records.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mood/internal/fault"
	"mood/internal/storage"
)

// LSN is a log sequence number. LSNs are dense and strictly increasing.
type LSN uint32

// TxID identifies a transaction.
type TxID uint32

// RecordKind distinguishes log record types.
type RecordKind uint8

// Log record kinds.
const (
	RecBegin RecordKind = iota
	RecCommit
	RecAbort
	RecUpdate
	RecCLR // compensation (redo-only) record written during undo
	RecCheckpoint
)

func (k RecordKind) String() string {
	switch k {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecUpdate:
		return "UPDATE"
	case RecCLR:
		return "CLR"
	case RecCheckpoint:
		return "CHECKPOINT"
	}
	return "UNKNOWN"
}

// Record is one log entry.
type Record struct {
	LSN     LSN
	Kind    RecordKind
	Tx      TxID
	PrevLSN LSN // previous record of the same transaction
	Page    storage.PageID
	Offset  uint16
	Before  []byte // before image (empty for CLRs)
	After   []byte // after image
	UndoNxt LSN    // for CLRs: next record of the transaction to undo
	// Checkpoint payload: transactions active at checkpoint time.
	ActiveTxs []TxID
}

// ErrTxNotActive is returned for operations on unknown or finished
// transactions.
var ErrTxNotActive = errors.New("wal: transaction not active")

// Log is an in-memory write-ahead log with an explicit durability horizon,
// so tests can crash the system with an arbitrary suffix of the log lost.
type Log struct {
	mu      sync.Mutex
	records []Record
	// base is the LSN immediately before the first retained record:
	// records[i].LSN == base + LSN(i) + 1. Checkpoint truncation drops a
	// durable prefix of the chain by advancing base; every record lookup
	// indexes relative to it.
	base     LSN
	nextLSN  LSN
	flushed  LSN // highest durable LSN
	active   map[TxID]LSN
	nextTx   TxID
	flushCnt int64
	// Group commit: when group is true, committers append their commit
	// record and then wait for a force that covers it. The first waiter that
	// finds no force in flight becomes the leader, forces the whole log tail
	// (one syncDelay for every commit record appended so far), and wakes the
	// followers; late arrivals piggyback on the next force. syncing marks a
	// force in flight; syncCond is signalled when it completes.
	group    bool
	syncing  bool
	syncCond *sync.Cond
	// syncDelay, when nonzero, models the latency of the fsync behind each
	// log force: every flush that advances the durability horizon sleeps
	// this long INSIDE the log mutex, the way a real group-commit stream
	// serializes on the device. It is what makes per-shard logs measurable:
	// N independent logs sustain N forces in parallel, one log serializes
	// them.
	syncDelay time.Duration
	// fi, when set, is consulted before record appends and log forces so
	// crash-recovery tests can lose the log's volatile suffix at any point.
	fi *fault.Injector
}

// NewLog creates an empty log.
func NewLog() *Log {
	l := &Log{
		nextLSN: 1,
		active:  make(map[TxID]LSN),
		nextTx:  1,
	}
	l.syncCond = sync.NewCond(&l.mu)
	return l
}

// Begin starts a transaction and logs its begin record.
func (l *Log) Begin() TxID {
	l.mu.Lock()
	defer l.mu.Unlock()
	tx := l.nextTx
	l.nextTx++
	lsn := l.appendLocked(Record{Kind: RecBegin, Tx: tx})
	l.active[tx] = lsn
	return tx
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector.
// Faults fire before any state changes, so a transiently failed Update or
// Commit can simply be retried, and a crashed one leaves the transaction
// active (a loser for recovery to undo).
func (l *Log) SetFaultInjector(fi *fault.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fi = fi
}

// checkFaultLocked consults the injector at the named fault point. Caller
// holds l.mu.
func (l *Log) checkFaultLocked(op fault.Op) error {
	switch l.fi.Check(op).Kind {
	case fault.Transient:
		return fmt.Errorf("wal: %s: %w", op, fault.ErrTransient)
	case fault.Torn, fault.Crash:
		return fmt.Errorf("wal: %s: %w", op, fault.ErrCrash)
	}
	return nil
}

// Update logs a physical update of the page at the given offset and returns
// the record's LSN, which the caller must stamp on the page before unpinning
// it. The before and after images are copied.
func (l *Log) Update(tx TxID, page storage.PageID, offset int, before, after []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev, ok := l.active[tx]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrTxNotActive, tx)
	}
	if err := l.checkFaultLocked(fault.OpLogAppend); err != nil {
		return 0, err
	}
	b := make([]byte, len(before))
	copy(b, before)
	a := make([]byte, len(after))
	copy(a, after)
	lsn := l.appendLocked(Record{
		Kind: RecUpdate, Tx: tx, PrevLSN: prev,
		Page: page, Offset: uint16(offset), Before: b, After: a,
	})
	l.active[tx] = lsn
	return lsn, nil
}

// Commit logs a commit record and forces the log: after Commit returns nil,
// the transaction survives any crash.
//
// With group commit enabled the force is amortized: the committer appends
// its commit record, then either piggybacks on a force already in flight or
// becomes the leader and forces the whole log tail with a single syncDelay.
// On error the transaction stays active and its commit record is volatile;
// the caller must retry Commit or treat the transaction as crashed (a loser
// for recovery) — it must not Abort, because a later successful force could
// still make the earlier commit record durable.
func (l *Log) Commit(tx TxID) error {
	l.mu.Lock()
	prev, ok := l.active[tx]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrTxNotActive, tx)
	}
	if l.group {
		lsn := l.appendLocked(Record{Kind: RecCommit, Tx: tx, PrevLSN: prev})
		if err := l.groupForceLocked(lsn); err != nil {
			l.mu.Unlock()
			return err
		}
		delete(l.active, tx)
		l.mu.Unlock()
		return nil
	}
	// The commit force is the durability point: a fault here leaves the
	// transaction active and undurable — a loser if the system dies now, a
	// clean retry if the fault was transient.
	if err := l.checkFaultLocked(fault.OpLogFlush); err != nil {
		l.mu.Unlock()
		return err
	}
	lsn := l.appendLocked(Record{Kind: RecCommit, Tx: tx, PrevLSN: prev})
	delete(l.active, tx)
	l.flushLocked(lsn)
	l.mu.Unlock()
	return nil
}

// groupForceLocked blocks until the durability horizon covers lsn. Caller
// holds l.mu; the lock is released while the leader sleeps through the
// simulated fsync, which is what lets a window of committers share one
// force. A fault fires at the leader's force point, before any horizon
// advance, so an acknowledged commit always sits behind a real force.
func (l *Log) groupForceLocked(lsn LSN) error {
	for l.flushed < lsn {
		if l.syncing {
			l.syncCond.Wait()
			continue
		}
		// No force in flight: become the leader for everything appended so
		// far (our record included, plus any followers queued behind us).
		if err := l.checkFaultLocked(fault.OpLogFlush); err != nil {
			return err
		}
		target := l.nextLSN - 1
		delay := l.syncDelay
		l.syncing = true
		if delay > 0 {
			l.mu.Unlock()
			time.Sleep(delay)
			l.mu.Lock()
		}
		if target > l.flushed {
			l.flushed = target
		}
		l.flushCnt++
		l.syncing = false
		l.syncCond.Broadcast()
	}
	return nil
}

// SetGroupCommit enables or disables group commit. Install before the log
// is shared across sessions.
func (l *Log) SetGroupCommit(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.group = on
}

// Abort rolls the transaction back by applying before images in reverse
// order through the supplied page writer, logging a CLR for every undone
// update, then logs the abort record.
func (l *Log) Abort(tx TxID, apply func(page storage.PageID, offset int, image []byte, lsn LSN) error) error {
	l.mu.Lock()
	cur, ok := l.active[tx]
	if !ok {
		l.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrTxNotActive, tx)
	}
	// A fault before the first CLR leaves the transaction fully active:
	// crash recovery will perform the identical undo from the log.
	if err := l.checkFaultLocked(fault.OpLogAppend); err != nil {
		l.mu.Unlock()
		return err
	}
	chain := l.txChainLocked(cur)
	l.mu.Unlock()

	for i := len(chain) - 1; i >= 0; i-- {
		rec := chain[i]
		if rec.Kind != RecUpdate {
			continue
		}
		l.mu.Lock()
		prev := l.active[tx]
		clr := l.appendLocked(Record{
			Kind: RecCLR, Tx: tx, PrevLSN: prev,
			Page: rec.Page, Offset: rec.Offset, After: rec.Before,
			UndoNxt: rec.PrevLSN,
		})
		l.active[tx] = clr
		l.mu.Unlock()
		if apply != nil {
			if err := apply(rec.Page, int(rec.Offset), rec.Before, clr); err != nil {
				return err
			}
		}
	}
	l.mu.Lock()
	prev := l.active[tx]
	lsn := l.appendLocked(Record{Kind: RecAbort, Tx: tx, PrevLSN: prev})
	delete(l.active, tx)
	l.flushLocked(lsn)
	l.mu.Unlock()
	return nil
}

// Checkpoint logs a fuzzy checkpoint carrying the active-transaction table
// and forces the log up to it.
func (l *Log) Checkpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLocked()
}

func (l *Log) checkpointLocked() LSN {
	txs := make([]TxID, 0, len(l.active))
	for tx := range l.active {
		txs = append(txs, tx)
	}
	lsn := l.appendLocked(Record{Kind: RecCheckpoint, ActiveTxs: txs})
	l.flushLocked(lsn)
	return lsn
}

// CheckpointTruncate logs a checkpoint and then drops every record that
// recovery can no longer need: everything below both the checkpoint and the
// begin record of the oldest still-active transaction (whose chain must
// survive for undo). The caller must have flushed all dirty pages first —
// truncation discards the redo information for the dropped prefix, so any
// update below the checkpoint has to be on disk already. Returns the
// checkpoint LSN and the number of records reclaimed.
func (l *Log) CheckpointTruncate() (LSN, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.checkpointLocked()
	keep := lsn
	for _, tail := range l.active {
		if first := l.txFirstLocked(tail); first < keep {
			keep = first
		}
	}
	freed := int(keep - 1 - l.base)
	if freed <= 0 {
		return lsn, 0
	}
	// Copy the tail into a fresh slice so the dropped prefix (and its
	// before/after images) becomes collectible.
	l.records = append([]Record(nil), l.records[keep-1-l.base:]...)
	l.base = keep - 1
	return lsn, freed
}

// txFirstLocked returns the LSN of the oldest retained record of the
// transaction chain ending at tail.
func (l *Log) txFirstLocked(tail LSN) LSN {
	first := tail
	for lsn := tail; lsn > l.base; {
		first = lsn
		lsn = l.records[lsn-1-l.base].PrevLSN
	}
	return first
}

// Flush makes all records up to lsn durable. The buffer pool calls this via
// its flush hook before writing any page, enforcing the WAL rule.
func (l *Log) Flush(lsn LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushLocked(lsn)
}

// FlushAll makes the entire log durable.
func (l *Log) FlushAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushLocked(l.nextLSN - 1)
}

// FlushHook adapts the log for storage.BufferPool.SetFlushHook. This is the
// write-ahead enforcement point: it runs before any dirty page goes to disk,
// so a fault injected here models a crash after the page was chosen for
// eviction but before its log records became durable.
func (l *Log) FlushHook() func(uint32) error {
	return func(pageLSN uint32) error {
		l.mu.Lock()
		defer l.mu.Unlock()
		if err := l.checkFaultLocked(fault.OpLogFlush); err != nil {
			return err
		}
		l.flushLocked(LSN(pageLSN))
		return nil
	}
}

// FlushedLSN returns the durability horizon.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// FlushCount returns how many explicit flush operations have run (a proxy
// for log I/O in benches).
func (l *Log) FlushCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushCnt
}

// ActiveTransactions returns the IDs of transactions that have begun but not
// committed or aborted.
func (l *Log) ActiveTransactions() []TxID {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TxID, 0, len(l.active))
	for tx := range l.active {
		out = append(out, tx)
	}
	return out
}

// DurableRecords returns a copy of the durable prefix of the log — what a
// crashed system would find on disk.
func (l *Log) DurableRecords() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.records))
	for _, r := range l.records {
		if r.LSN <= l.flushed {
			out = append(out, r)
		}
	}
	return out
}

// Len returns the number of appended records (durable or not).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

func (l *Log) appendLocked(rec Record) LSN {
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, rec)
	return rec.LSN
}

func (l *Log) flushLocked(lsn LSN) {
	if lsn > l.flushed {
		l.flushed = lsn
		l.flushCnt++
		if l.syncDelay > 0 {
			time.Sleep(l.syncDelay)
		}
	}
}

// SetSyncDelay sets the simulated per-force fsync latency (0 disables it).
// Install before the log is shared; the commit benchmarks use it to expose
// the single-log serialization a sharded store removes.
func (l *Log) SetSyncDelay(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncDelay = d
}

// txChainLocked collects the records of one transaction, oldest first,
// following PrevLSN from the given tail. The walk stops at the truncation
// base; CheckpointTruncate keeps every active transaction's full chain, so
// a retained tail never chains below it.
func (l *Log) txChainLocked(tail LSN) []Record {
	var chain []Record
	for lsn := tail; lsn > l.base; {
		rec := l.records[lsn-1-l.base]
		chain = append(chain, rec)
		lsn = rec.PrevLSN
	}
	// reverse to oldest-first
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}
